package offload

import (
	"sync/atomic"
	"testing"
	"time"

	"openmpmca/internal/mcapi"
)

// hbHarness wires a host-side monitor against one fake peer: pings land
// on pingTo (the "worker" endpoint), pongs are sent to pongFrom (the
// "host" endpoint).
type hbHarness struct {
	state    *HealthState
	pingTo   *mcapi.Endpoint
	pongFrom *mcapi.Endpoint
	stop     chan struct{}
	done     chan struct{}
	lost     atomic.Int64
	pongs    atomic.Int64
	drops    atomic.Int64
}

func newHBHarness(t *testing.T, pingDepth int) *hbHarness {
	t.Helper()
	sys := mcapi.NewSystem()
	worker, err := sys.Initialize(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	host, err := sys.Initialize(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	pingTo, err := worker.CreateEndpoint(1, &mcapi.EndpointAttributes{QueueDepth: pingDepth})
	if err != nil {
		t.Fatal(err)
	}
	pongFrom, err := host.CreateEndpoint(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &hbHarness{
		state:    &HealthState{}, // zero value: clock never started
		pingTo:   pingTo,
		pongFrom: pongFrom,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

func (h *hbHarness) monitor(period, lostAfter time.Duration) {
	go func() {
		defer close(h.done)
		MonitorHealth(h.stop, period, lostAfter,
			[]HealthPeer{{ID: 1, State: h.state, PingTo: h.pingTo, PongFrom: h.pongFrom}},
			func(int) { h.lost.Add(1) },
			func() { h.pongs.Add(1) },
			func() { h.drops.Add(1) })
	}()
}

func (h *hbHarness) shutdown() {
	close(h.stop)
	<-h.done
}

// TestNeverPongedPeerSurvivesFirstWindow is the zero-value HealthState
// regression test: a peer whose clock was never started via RecordPong
// must not be declared lost the instant the monitor looks at it —
// lastPong == 0 compares against the unix epoch and read as "silent for
// decades" before MonitorHealth stamped clocks at loop start.
func TestNeverPongedPeerSurvivesFirstWindow(t *testing.T) {
	h := newHBHarness(t, 0)
	defer h.shutdown()

	const (
		period    = 5 * time.Millisecond
		lostAfter = 60 * time.Millisecond
	)
	h.monitor(period, lostAfter)

	// Well inside the first lostAfter window the peer must still be
	// live, even though it has never ponged.
	time.Sleep(lostAfter / 3)
	if h.state.Lost() {
		t.Fatal("never-ponged peer declared lost inside its first lostAfter window")
	}

	// With nobody answering pings it must eventually expire — the stamp
	// defers judgment, it does not disable it.
	deadline := time.Now().Add(10 * lostAfter)
	for !h.state.Lost() {
		if time.Now().After(deadline) {
			t.Fatal("silent peer never declared lost")
		}
		time.Sleep(period)
	}
	if h.lost.Load() != 1 {
		t.Fatalf("onLost called %d times, want 1", h.lost.Load())
	}
}

// TestPingBackpressureCountsDrops fills the peer's ping queue (depth 1,
// never drained) and checks that dropped pings are counted instead of
// silently discarded.
func TestPingBackpressureCountsDrops(t *testing.T) {
	h := newHBHarness(t, 1)
	defer h.shutdown()

	const period = 2 * time.Millisecond
	// Generous loss deadline: the test is about drop accounting, not
	// expiry.
	h.monitor(period, time.Second)

	deadline := time.Now().Add(2 * time.Second)
	for h.drops.Load() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("ping drops not counted under backpressure: %d", h.drops.Load())
		}
		time.Sleep(period)
	}
	if h.state.Lost() {
		t.Fatal("peer lost before its deadline purely from send-queue backpressure")
	}
}

// TestPongKeepsPeerAliveAndCounts answers every ping and checks the pong
// path: the peer stays live indefinitely and pongs are counted.
func TestPongKeepsPeerAliveAndCounts(t *testing.T) {
	h := newHBHarness(t, 0)

	const (
		period    = 2 * time.Millisecond
		lostAfter = 16 * time.Millisecond
	)
	responderStop := make(chan struct{})
	responderDone := make(chan struct{})
	go func() {
		defer close(responderDone)
		for {
			select {
			case <-responderStop:
				return
			default:
			}
			msg, _, err := mcapi.MsgRecv(h.pingTo, mcapi.Timeout(period))
			if err != nil {
				continue
			}
			ping, derr := DecodePing(msg)
			if derr != nil {
				continue
			}
			pong := EncodePong(HBFrame{Domain: 1, Seq: ping.Seq})
			_ = mcapi.MsgSend(h.pongFrom, pong, 0, mcapi.TimeoutImmediate)
		}
	}()
	h.monitor(period, lostAfter)

	time.Sleep(10 * lostAfter)
	if h.state.Lost() {
		t.Fatal("responsive peer declared lost")
	}
	if h.pongs.Load() == 0 {
		t.Fatal("no pongs counted from a responsive peer")
	}
	h.shutdown()
	close(responderStop)
	<-responderDone
}
