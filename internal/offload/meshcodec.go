package offload

import (
	"encoding/binary"
	"fmt"
)

// Wire codec for the peer-to-peer steal mesh and the MRAPI zero-copy
// data plane (internal/taskfabric). These kinds continue the shared
// kind space after KindBatch (13), so every channel in the fabric —
// host cmd/res and the worker-to-worker mesh — stays classifiable by
// its first byte.
//
//	peersteal:  kind | thief u32 | want u32
//	peeryield:  kind | victim u32 | task-frame body (see taskcodec.go)
//	stealmoved: kind | task u64 | thief u32 | victim u32
//	rmemdesc:   kind | inner u8 | owner u32 | offset u64 | len u32 |
//	            hdrLen u32 | inner frame with empty payload
//	rmemack:    kind | owner u32 | offset u64
//	loadmap:    kind | n u32 | n x occ u32

// Mesh and zero-copy frame kinds, continuing the shared kind space
// after KindBatch (13).
const (
	KindPeerSteal  = msgKind(14 + iota) // thief -> victim (direct) or thief -> host (brokered fallback)
	KindPeerYield                       // victim -> thief (direct): one queued task changes hands
	KindStealMoved                      // thief -> host: re-point accounting after a direct steal
	KindRmemDesc                        // any: payload staged in an MRAPI window, frame carries a descriptor
	KindRmemAck                         // payload consumed: owner may recycle the window slot
	KindLoadMap                         // host -> workers: per-domain occupancy snapshot
)

// PeerStealFrame asks a victim domain to yield up to Want queued tasks
// directly to the thief. Sent host-ward on the result channel it is a
// brokered-fallback request: the host runs the classic grant path on
// the thief's behalf.
type PeerStealFrame struct {
	Thief uint32 // requesting domain id
	Want  uint32 // max tasks to yield
}

// PeerYieldFrame hands one queued task directly from victim to thief;
// the embedded TaskFrame is the same body a host dispatch carries.
type PeerYieldFrame struct {
	Victim uint32
	Task   TaskFrame
}

// StealMovedFrame tells the host a task migrated victim -> thief via a
// direct peer steal, so flight accounting, occupancy and loss recovery
// follow the task to its new executor.
type StealMovedFrame struct {
	Task   uint64
	Thief  uint32
	Victim uint32
}

// RmemDescFrame is the zero-copy envelope: the inner frame travels with
// an empty payload, and the payload itself sits in the MRAPI window of
// arena owner Owner at [Offset, Offset+Length). Inner names the wrapped
// frame kind (KindTask, KindTaskResult or KindPeerYield); Header is the
// inner frame encoded with a nil payload.
type RmemDescFrame struct {
	Inner  WireKind
	Owner  uint32 // arena owner: 0 = host, i = worker domain i
	Offset uint64 // byte offset into the owner's window
	Length uint32 // unpadded payload length
	Header []byte // inner frame, payload field empty
}

// RmemAckFrame tells an arena owner the payload at Offset was consumed
// and the window slot may be recycled.
type RmemAckFrame struct {
	Owner  uint32
	Offset uint64
}

// LoadMapFrame is the host's occupancy broadcast: Occ[i] is the
// in-flight count of worker domain i+1. Idle workers pick their steal
// victim from the most recent map.
type LoadMapFrame struct {
	Occ []uint32
}

// EncodePeerSteal encodes a KindPeerSteal packet.
func EncodePeerSteal(m PeerStealFrame) []byte {
	buf := frameBuf(1 + 4 + 4)
	buf = append(buf, byte(KindPeerSteal))
	buf = binary.LittleEndian.AppendUint32(buf, m.Thief)
	buf = binary.LittleEndian.AppendUint32(buf, m.Want)
	return buf
}

// DecodePeerSteal decodes a KindPeerSteal packet.
func DecodePeerSteal(pkt []byte) (PeerStealFrame, error) {
	var m PeerStealFrame
	if len(pkt) != 1+4+4 || msgKind(pkt[0]) != KindPeerSteal {
		return m, fmt.Errorf("offload: malformed peer-steal frame (%d bytes)", len(pkt))
	}
	m.Thief = binary.LittleEndian.Uint32(pkt[1:])
	m.Want = binary.LittleEndian.Uint32(pkt[5:])
	return m, nil
}

// EncodePeerYield encodes a KindPeerYield packet: the victim id followed
// by the task-frame body.
func EncodePeerYield(m PeerYieldFrame) []byte {
	t := m.Task
	buf := frameBuf(1 + 4 + 8 + 4 + 8 + 2 + len(t.Job) + 4 + len(t.Arg))
	buf = append(buf, byte(KindPeerYield))
	buf = binary.LittleEndian.AppendUint32(buf, m.Victim)
	buf = binary.LittleEndian.AppendUint64(buf, t.Task)
	buf = binary.LittleEndian.AppendUint32(buf, t.Attempt)
	buf = binary.LittleEndian.AppendUint64(buf, t.Group)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(t.Job)))
	buf = append(buf, t.Job...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.Arg)))
	buf = append(buf, t.Arg...)
	return buf
}

// DecodePeerYield decodes a KindPeerYield packet, copying the argument
// out of pkt; use DecodePeerYieldShared when the caller owns pkt
// exclusively.
func DecodePeerYield(pkt []byte) (PeerYieldFrame, error) {
	return decodePeerYieldBuf(pkt, false)
}

// DecodePeerYieldShared decodes with Task.Arg aliasing pkt — no copy.
// Only for receivers that own the delivered packet exclusively.
func DecodePeerYieldShared(pkt []byte) (PeerYieldFrame, error) {
	return decodePeerYieldBuf(pkt, true)
}

func decodePeerYieldBuf(pkt []byte, share bool) (PeerYieldFrame, error) {
	var m PeerYieldFrame
	if len(pkt) < 1+4 || msgKind(pkt[0]) != KindPeerYield {
		return m, fmt.Errorf("offload: malformed peer-yield frame (%d bytes)", len(pkt))
	}
	m.Victim = binary.LittleEndian.Uint32(pkt[1:])
	p := pkt[5:]
	if len(p) < 8+4+8+2 {
		return m, fmt.Errorf("offload: peer-yield frame truncated (%d bytes)", len(pkt))
	}
	m.Task.Task = binary.LittleEndian.Uint64(p)
	m.Task.Attempt = binary.LittleEndian.Uint32(p[8:])
	m.Task.Group = binary.LittleEndian.Uint64(p[12:])
	jlen := int(binary.LittleEndian.Uint16(p[20:]))
	p = p[22:]
	if len(p) < jlen+4 {
		return m, fmt.Errorf("offload: peer-yield frame truncated in job name")
	}
	m.Task.Job = string(p[:jlen])
	p = p[jlen:]
	alen := int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	if len(p) != alen {
		return m, fmt.Errorf("offload: peer-yield arg length %d, have %d bytes", alen, len(p))
	}
	if alen > 0 {
		if share {
			m.Task.Arg = p
		} else {
			m.Task.Arg = append([]byte(nil), p...)
		}
	}
	return m, nil
}

// EncodeStealMoved encodes a KindStealMoved packet.
func EncodeStealMoved(m StealMovedFrame) []byte {
	buf := frameBuf(1 + 8 + 4 + 4)
	buf = append(buf, byte(KindStealMoved))
	buf = binary.LittleEndian.AppendUint64(buf, m.Task)
	buf = binary.LittleEndian.AppendUint32(buf, m.Thief)
	buf = binary.LittleEndian.AppendUint32(buf, m.Victim)
	return buf
}

// DecodeStealMoved decodes a KindStealMoved packet.
func DecodeStealMoved(pkt []byte) (StealMovedFrame, error) {
	var m StealMovedFrame
	if len(pkt) != 1+8+4+4 || msgKind(pkt[0]) != KindStealMoved {
		return m, fmt.Errorf("offload: malformed steal-moved frame (%d bytes)", len(pkt))
	}
	m.Task = binary.LittleEndian.Uint64(pkt[1:])
	m.Thief = binary.LittleEndian.Uint32(pkt[9:])
	m.Victim = binary.LittleEndian.Uint32(pkt[13:])
	return m, nil
}

// EncodeRmemDesc encodes a KindRmemDesc packet.
func EncodeRmemDesc(m RmemDescFrame) []byte {
	buf := frameBuf(1 + 1 + 4 + 8 + 4 + 4 + len(m.Header))
	buf = append(buf, byte(KindRmemDesc), byte(m.Inner))
	buf = binary.LittleEndian.AppendUint32(buf, m.Owner)
	buf = binary.LittleEndian.AppendUint64(buf, m.Offset)
	buf = binary.LittleEndian.AppendUint32(buf, m.Length)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Header)))
	buf = append(buf, m.Header...)
	return buf
}

// DecodeRmemDesc decodes a KindRmemDesc packet, copying the header out
// of pkt; use DecodeRmemDescShared when the caller owns pkt exclusively.
func DecodeRmemDesc(pkt []byte) (RmemDescFrame, error) {
	return decodeRmemDescBuf(pkt, false)
}

// DecodeRmemDescShared decodes with Header aliasing pkt — no copy. Only
// for receivers that own the delivered packet exclusively.
func DecodeRmemDescShared(pkt []byte) (RmemDescFrame, error) {
	return decodeRmemDescBuf(pkt, true)
}

func decodeRmemDescBuf(pkt []byte, share bool) (RmemDescFrame, error) {
	var m RmemDescFrame
	if len(pkt) < 1+1+4+8+4+4 || msgKind(pkt[0]) != KindRmemDesc {
		return m, fmt.Errorf("offload: malformed rmem-desc frame (%d bytes)", len(pkt))
	}
	m.Inner = msgKind(pkt[1])
	m.Owner = binary.LittleEndian.Uint32(pkt[2:])
	m.Offset = binary.LittleEndian.Uint64(pkt[6:])
	m.Length = binary.LittleEndian.Uint32(pkt[14:])
	hlen := int(binary.LittleEndian.Uint32(pkt[18:]))
	p := pkt[22:]
	if len(p) != hlen {
		return m, fmt.Errorf("offload: rmem-desc header length %d, have %d bytes", hlen, len(p))
	}
	if hlen > 0 {
		if share {
			m.Header = p
		} else {
			m.Header = append([]byte(nil), p...)
		}
	}
	return m, nil
}

// EncodeRmemAck encodes a KindRmemAck packet.
func EncodeRmemAck(m RmemAckFrame) []byte {
	buf := frameBuf(1 + 4 + 8)
	buf = append(buf, byte(KindRmemAck))
	buf = binary.LittleEndian.AppendUint32(buf, m.Owner)
	buf = binary.LittleEndian.AppendUint64(buf, m.Offset)
	return buf
}

// DecodeRmemAck decodes a KindRmemAck packet.
func DecodeRmemAck(pkt []byte) (RmemAckFrame, error) {
	var m RmemAckFrame
	if len(pkt) != 1+4+8 || msgKind(pkt[0]) != KindRmemAck {
		return m, fmt.Errorf("offload: malformed rmem-ack frame (%d bytes)", len(pkt))
	}
	m.Owner = binary.LittleEndian.Uint32(pkt[1:])
	m.Offset = binary.LittleEndian.Uint64(pkt[5:])
	return m, nil
}

// EncodeLoadMap encodes a KindLoadMap packet.
func EncodeLoadMap(m LoadMapFrame) []byte {
	buf := frameBuf(1 + 4 + 4*len(m.Occ))
	buf = append(buf, byte(KindLoadMap))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Occ)))
	for _, o := range m.Occ {
		buf = binary.LittleEndian.AppendUint32(buf, o)
	}
	return buf
}

// DecodeLoadMap decodes a KindLoadMap packet.
func DecodeLoadMap(pkt []byte) (LoadMapFrame, error) {
	var m LoadMapFrame
	if len(pkt) < 1+4 || msgKind(pkt[0]) != KindLoadMap {
		return m, fmt.Errorf("offload: malformed load-map frame (%d bytes)", len(pkt))
	}
	n := int(binary.LittleEndian.Uint32(pkt[1:]))
	if len(pkt) != 1+4+4*n {
		return m, fmt.Errorf("offload: load-map count %d, have %d bytes", n, len(pkt))
	}
	if n > 0 {
		m.Occ = make([]uint32, n)
		for i := range m.Occ {
			m.Occ[i] = binary.LittleEndian.Uint32(pkt[5+4*i:])
		}
	}
	return m, nil
}
