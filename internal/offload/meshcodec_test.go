package offload

import (
	"bytes"
	"testing"
)

func TestMeshCodecRoundTrips(t *testing.T) {
	ps := PeerStealFrame{Thief: 3, Want: 7}
	if got, err := DecodePeerSteal(EncodePeerSteal(ps)); err != nil || got != ps {
		t.Fatalf("peer-steal round trip: %+v, %v", got, err)
	}

	py := PeerYieldFrame{
		Victim: 5,
		Task:   TaskFrame{Task: 42, Attempt: 2, Group: 9, Job: "sum", Arg: []byte{1, 2, 3}},
	}
	got, err := DecodePeerYield(EncodePeerYield(py))
	if err != nil {
		t.Fatal(err)
	}
	if got.Victim != py.Victim || got.Task.Task != py.Task.Task ||
		got.Task.Attempt != py.Task.Attempt || got.Task.Group != py.Task.Group ||
		got.Task.Job != py.Task.Job || !bytes.Equal(got.Task.Arg, py.Task.Arg) {
		t.Fatalf("peer-yield round trip %+v != %+v", got, py)
	}

	sm := StealMovedFrame{Task: 42, Thief: 3, Victim: 5}
	if got, err := DecodeStealMoved(EncodeStealMoved(sm)); err != nil || got != sm {
		t.Fatalf("steal-moved round trip: %+v, %v", got, err)
	}

	rd := RmemDescFrame{
		Inner: KindTask, Owner: 2, Offset: 4096, Length: 8192,
		Header: EncodeTaskFrame(KindTask, TaskFrame{Task: 42, Job: "sum"}),
	}
	gotRd, err := DecodeRmemDesc(EncodeRmemDesc(rd))
	if err != nil {
		t.Fatal(err)
	}
	if gotRd.Inner != rd.Inner || gotRd.Owner != rd.Owner || gotRd.Offset != rd.Offset ||
		gotRd.Length != rd.Length || !bytes.Equal(gotRd.Header, rd.Header) {
		t.Fatalf("rmem-desc round trip %+v != %+v", gotRd, rd)
	}
	// The embedded header must decode back to the inner frame.
	inner, err := DecodeTaskFrame(KindTask, gotRd.Header)
	if err != nil || inner.Task != 42 || inner.Job != "sum" {
		t.Fatalf("rmem-desc header decode: %+v, %v", inner, err)
	}

	ra := RmemAckFrame{Owner: 2, Offset: 4096}
	if got, err := DecodeRmemAck(EncodeRmemAck(ra)); err != nil || got != ra {
		t.Fatalf("rmem-ack round trip: %+v, %v", got, err)
	}

	lm := LoadMapFrame{Occ: []uint32{0, 5, 2, 9}}
	gotLm, err := DecodeLoadMap(EncodeLoadMap(lm))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotLm.Occ) != len(lm.Occ) {
		t.Fatalf("load-map round trip %+v != %+v", gotLm, lm)
	}
	for i := range lm.Occ {
		if gotLm.Occ[i] != lm.Occ[i] {
			t.Fatalf("load-map occ[%d] = %d, want %d", i, gotLm.Occ[i], lm.Occ[i])
		}
	}
}

func TestMeshFrameKindClassifies(t *testing.T) {
	cases := []struct {
		pkt  []byte
		want WireKind
	}{
		{EncodePeerSteal(PeerStealFrame{}), KindPeerSteal},
		{EncodePeerYield(PeerYieldFrame{}), KindPeerYield},
		{EncodeStealMoved(StealMovedFrame{}), KindStealMoved},
		{EncodeRmemDesc(RmemDescFrame{}), KindRmemDesc},
		{EncodeRmemAck(RmemAckFrame{}), KindRmemAck},
		{EncodeLoadMap(LoadMapFrame{}), KindLoadMap},
	}
	for _, c := range cases {
		if k, ok := FrameKind(c.pkt); !ok || k != c.want {
			t.Fatalf("FrameKind(% x): kind %d ok=%v, want %d", c.pkt, k, ok, c.want)
		}
	}
	// One past the mesh range must not classify.
	if _, ok := FrameKind([]byte{byte(KindLoadMap) + 1}); ok {
		t.Fatal("kind past the mesh range classified as a fabric frame")
	}
}
