// Package offload distributes OpenMP parallel-for regions across
// multiple runtime domains — separate core.Runtime instances, each bound
// to its own hypervisor partition of the board — that communicate
// exclusively over internal/mcapi.
//
// The host domain splits a region's iteration space into chunk
// descriptors and farms them out on per-domain MCAPI packet channels,
// interleaving local execution according to perfmodel cost estimates.
// Credit-based backpressure bounds the chunks in flight per domain;
// per-chunk deadlines and heartbeat-based health detection let the host
// reclaim work from a slow or crashed domain, so a region always
// completes — a lost domain surfaces as an ErrDomainLost-wrapped error
// alongside the (complete, correct) result.
//
// This is the paper's §7 trajectory made concrete: MRAPI carries the
// intra-runtime layer (core.MCALayer), and MCAPI — until now only
// demonstrated by examples — becomes the load-bearing transport between
// runtimes.
package offload

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"openmpmca/internal/core"
	"openmpmca/internal/mcapi"
	"openmpmca/internal/oerrors"
	"openmpmca/internal/perfmodel"
	"openmpmca/internal/platform"
)

// ErrDomainLost marks a region during which a worker domain died. The
// region's result is still complete and correct — the lost domain's
// chunks were re-executed elsewhere — so callers that can tolerate
// degraded capacity may treat it as a warning. Classified
// Domain/domain_lost; taskfabric shares this sentinel.
var ErrDomainLost = oerrors.Sentinel(oerrors.Domain, oerrors.CodeDomainLost,
	"offload: worker domain lost")

// ErrClosed is returned by operations on a closed Offloader. Classified
// Cancel/offload_closed.
var ErrClosed = oerrors.Sentinel(oerrors.Cancel, oerrors.CodeOffloadClosed,
	"offload: offloader closed")

// EventSink receives offload trace events. Domain -1 is the host's local
// executor. trace.Recorder implements it.
type EventSink interface {
	OffloadSend(domain, chunk int)
	OffloadRecv(domain, chunk int)
}

// RegionObserver receives per-region progress callbacks from
// ParallelForObserved, scoped to that one call: RegionStart announces
// the chunk count, then ChunkDone fires once per chunk as its first
// result is accepted (domain -1 = host-local execution). Unlike
// EventSink — which is offloader-global and cannot attribute a chunk to
// a caller — an observer belongs to exactly one region, which is what
// the job service's per-job progress streams need. Callbacks run on the
// region's scheduling goroutine: keep them fast and never call back
// into the Offloader.
type RegionObserver interface {
	RegionStart(chunks int)
	ChunkDone(chunk, domain int)
}

// config collects the tunables behind the Options.
type config struct {
	domains    int
	board      *platform.Board
	chunkIters int
	deadline   time.Duration
	retries    int
	heartbeat  time.Duration
	lostAfter  time.Duration
	inflight   int
	batch      bool
	sink       EventSink
	prof       perfmodel.KernelProfile
}

// Option configures New.
type Option func(*config) error

func defaultConfig() config {
	return config{
		domains:   3,
		board:     platform.T4240RDB(),
		deadline:  500 * time.Millisecond,
		retries:   2,
		heartbeat: 20 * time.Millisecond,
		inflight:  2,
		batch:     true,
		prof:      perfmodel.KernelProfile{Name: "offload", CyclesPerUnit: 1, MemoryIntensity: 0.2},
	}
}

// WithDomains sets the number of worker domains (default 3).
func WithDomains(n int) Option {
	return func(c *config) error {
		if n < 1 || n > 64 {
			return fmt.Errorf("%w: offload: WithDomains(%d): want 1..64", core.ErrInvalidOption, n)
		}
		c.domains = n
		return nil
	}
}

// WithBoard selects the simulated board to partition (default T4240RDB).
func WithBoard(b *platform.Board) Option {
	return func(c *config) error {
		if b == nil {
			return fmt.Errorf("%w: offload: WithBoard(nil)", core.ErrInvalidOption)
		}
		c.board = b
		return nil
	}
}

// WithChunkIters fixes the iterations per chunk; 0 (the default) sizes
// chunks so each executor sees about four.
func WithChunkIters(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("%w: offload: WithChunkIters(%d): want >= 0", core.ErrInvalidOption, n)
		}
		c.chunkIters = n
		return nil
	}
}

// WithChunkDeadline bounds how long the host waits for a chunk's result
// before re-dispatching it (default 500ms).
func WithChunkDeadline(d time.Duration) Option {
	return func(c *config) error {
		if d <= 0 {
			return fmt.Errorf("%w: offload: WithChunkDeadline(%v): want > 0", core.ErrInvalidOption, d)
		}
		c.deadline = d
		return nil
	}
}

// WithRetries sets how many re-dispatches a chunk gets before it is
// pinned to local execution (default 2).
func WithRetries(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("%w: offload: WithRetries(%d): want >= 0", core.ErrInvalidOption, n)
		}
		c.retries = n
		return nil
	}
}

// WithHeartbeat sets the ping period; a domain missing pongs for eight
// periods is declared lost (default 20ms).
func WithHeartbeat(period time.Duration) Option {
	return func(c *config) error {
		if period <= 0 {
			return fmt.Errorf("%w: offload: WithHeartbeat(%v): want > 0", core.ErrInvalidOption, period)
		}
		c.heartbeat = period
		return nil
	}
}

// WithInflight sets the per-domain credit count — the chunk descriptors
// allowed in flight to one domain at a time (default 2).
func WithInflight(n int) Option {
	return func(c *config) error {
		if n < 1 || n > 32 {
			return fmt.Errorf("%w: offload: WithInflight(%d): want 1..32", core.ErrInvalidOption, n)
		}
		c.inflight = n
		return nil
	}
}

// WithBatching toggles frame coalescing: when on (the default) a flush
// that has several chunk descriptors bound for the same domain sends
// them as one batch packet instead of one packet each. Off restores
// one-frame-per-send as an ablation baseline, so the batching win stays
// measurable against the paper's Table I methodology.
func WithBatching(on bool) Option {
	return func(c *config) error {
		c.batch = on
		return nil
	}
}

// WithEventSink installs a sink for EvOffloadSend/EvOffloadRecv events.
func WithEventSink(s EventSink) Option {
	return func(c *config) error {
		c.sink = s
		return nil
	}
}

// WithProfile sets the perfmodel kernel profile used to weight the host
// against the worker domains when interleaving local execution.
func WithProfile(p perfmodel.KernelProfile) Option {
	return func(c *config) error {
		c.prof = p
		return nil
	}
}

// ewmaAlpha is the smoothing factor for observed per-chunk service
// times; see perfmodel.ServiceEWMA.
const ewmaAlpha = 0.3

// link is the host's view of one worker domain.
type link struct {
	d      *domain
	cpus   int                    // hardware threads in the domain's partition
	cmd    *mcapi.PktSendHandle   // chunk descriptors out
	res    *mcapi.PktRecvHandle   // results back
	hbTo   *mcapi.Endpoint        // worker's ping endpoint
	hbFrom *mcapi.Endpoint        // host endpoint pongs arrive on
	weight float64                // static perfmodel service rate (1/ns)
	ewma   *perfmodel.ServiceEWMA // observed ns per iteration
	health *HealthState
}

// stats are the Offloader's monotonically increasing counters.
type stats struct {
	regions          atomic.Uint64
	remoteChunks     atomic.Uint64
	localChunks      atomic.Uint64
	resends          atomic.Uint64
	domainsLost      atomic.Uint64
	heartbeats       atomic.Uint64
	pingDrops        atomic.Uint64
	chunkAdaptations atomic.Uint64
	readmissions     atomic.Uint64
}

// StatsSnapshot is a point-in-time copy of the offload counters. It is
// JSON-taggable: it serializes as the "offload" section of the unified
// openmpmca.Snapshot.
type StatsSnapshot struct {
	Regions          uint64 `json:"regions"`           // ParallelFor regions run
	RemoteChunks     uint64 `json:"remote_chunks"`     // chunks completed by worker domains
	LocalChunks      uint64 `json:"local_chunks"`      // chunks completed by the host
	Resends          uint64 `json:"resends"`           // chunk re-dispatches (deadline or domain loss)
	DomainsLost      uint64 `json:"domains_lost"`      // worker domains declared dead
	Heartbeats       uint64 `json:"heartbeats"`        // pongs received
	PingDrops        uint64 `json:"ping_drops"`        // pings dropped by a full send queue
	ChunkAdaptations uint64 `json:"chunk_adaptations"` // observed service times folded into the weights
	Readmissions     uint64 `json:"readmissions"`      // lost domains readmitted after restart
}

// DomainInfo describes one worker domain for introspection surfaces (the
// job service's GET /v1/domains): identity, liveness, and the adaptive
// EWMA service weight the scheduler balances with.
type DomainInfo struct {
	ID          int     `json:"id"`   // 0-based link index
	Name        string  `json:"name"` // hypervisor partition name
	CPUs        int     `json:"cpus"`
	Live        bool    `json:"live"`
	EWMAIterNs  float64 `json:"ewma_iter_ns"` // observed ns per iteration, 0 until primed
	EWMASamples uint64  `json:"ewma_samples"`
}

// arrival is one decoded result handed from a receiver to the scheduler.
type arrival struct {
	dom int // link index
	msg resultMsg
}

// Offloader owns a partitioned board: one host runtime plus N worker
// domains, all MCA-backed, joined only by MCAPI. It is safe for
// concurrent use; regions are serialized internally.
type Offloader struct {
	cfg config
	reg *Registry
	cl  *cluster

	resCh  chan arrival
	lostCh chan int
	stopCh chan struct{}
	wg     sync.WaitGroup

	regionMu  sync.Mutex
	regionSeq uint64

	closed atomic.Bool
	st     stats
}

// New partitions the configured board, boots the host and worker
// runtimes, wires the MCAPI fabric and starts health monitoring.
func New(reg *Registry, opts ...Option) (*Offloader, error) {
	if reg == nil {
		return nil, fmt.Errorf("%w: offload: nil registry", core.ErrInvalidOption)
	}
	cfg := defaultConfig()
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.lostAfter == 0 {
		cfg.lostAfter = 8 * cfg.heartbeat
	}
	cl, err := buildCluster(&cfg, reg)
	if err != nil {
		return nil, err
	}
	o := &Offloader{
		cfg:    cfg,
		reg:    reg,
		cl:     cl,
		resCh:  make(chan arrival, cfg.domains*(cfg.inflight+2)+8),
		lostCh: make(chan int, cfg.domains),
		stopCh: make(chan struct{}),
	}
	now := time.Now().UnixNano()
	for _, l := range cl.links {
		l.health.RecordPong(now)
	}
	for _, d := range cl.domains {
		d.start()
	}
	o.wg.Add(len(cl.links) + 1)
	for i := range cl.links {
		go o.receiver(i)
	}
	go o.healthLoop()
	return o, nil
}

// Domains reports the number of worker domains (live or lost).
func (o *Offloader) Domains() int { return len(o.cl.links) }

// Board returns the partitioned board.
func (o *Offloader) Board() *platform.Board { return o.cfg.board }

// Render draws the hypervisor partition map.
func (o *Offloader) Render() string { return o.cl.net.HV.Render() }

// Stats snapshots the offload counters.
func (o *Offloader) Stats() StatsSnapshot {
	return StatsSnapshot{
		Regions:          o.st.regions.Load(),
		RemoteChunks:     o.st.remoteChunks.Load(),
		LocalChunks:      o.st.localChunks.Load(),
		Resends:          o.st.resends.Load(),
		DomainsLost:      o.st.domainsLost.Load(),
		Heartbeats:       o.st.heartbeats.Load(),
		PingDrops:        o.st.pingDrops.Load(),
		ChunkAdaptations: o.st.chunkAdaptations.Load(),
		Readmissions:     o.st.readmissions.Load(),
	}
}

// DomainInfos snapshots every worker domain's identity, liveness and
// adaptive service weight.
func (o *Offloader) DomainInfos() []DomainInfo {
	out := make([]DomainInfo, len(o.cl.links))
	for i, l := range o.cl.links {
		ns, _ := l.ewma.Value()
		out[i] = DomainInfo{
			ID:          i,
			Name:        l.d.name,
			CPUs:        l.cpus,
			Live:        !l.health.Lost(),
			EWMAIterNs:  ns,
			EWMASamples: l.ewma.Samples(),
		}
	}
	return out
}

// HostStats snapshots the host runtime's scheduler counters.
func (o *Offloader) HostStats() core.StatsSnapshot {
	return o.cl.host.Stats().Snapshot()
}

// KillDomain crashes worker domain i (0-based) for fault injection. The
// host is not told: it finds out through missed heartbeats, exactly as
// it would for real hardware.
func (o *Offloader) KillDomain(i int) error {
	if i < 0 || i >= len(o.cl.links) {
		return oerrors.Errorf(oerrors.Admission, oerrors.CodeInvalidOption, "offload: no domain %d", i)
	}
	o.cl.links[i].d.Kill()
	return nil
}

// ReadmitDomain brings a lost worker domain back into service after a
// restart — the shared re-admission path (HealthState.Readmit plus a
// domain restart) that internal/taskfabric follows too. The domain's
// service loops restart against its existing MCAPI wiring, its pong
// clock resets, and the scheduler resumes sending it chunks; without
// this, a lost domain stayed lost until the Offloader was rebuilt.
func (o *Offloader) ReadmitDomain(i int) error {
	if o.closed.Load() {
		return ErrClosed
	}
	if i < 0 || i >= len(o.cl.links) {
		return oerrors.Errorf(oerrors.Admission, oerrors.CodeInvalidOption, "offload: no domain %d", i)
	}
	l := o.cl.links[i]
	if !l.health.Lost() {
		return oerrors.Errorf(oerrors.Domain, oerrors.CodeReadmit, "offload: domain %s is not lost", l.d.name)
	}
	l.d.restart()
	if !l.health.Readmit(time.Now().UnixNano()) {
		return oerrors.Errorf(oerrors.Domain, oerrors.CodeReadmit, "offload: domain %s readmitted concurrently", l.d.name)
	}
	o.st.readmissions.Add(1)
	return nil
}

// receiver drains one domain's result channel into resCh. It exits when
// the channel dies (Close finalizes the host node) or the offloader
// stops.
func (o *Offloader) receiver(i int) {
	defer o.wg.Done()
	l := o.cl.links[i]
	for {
		pkt, err := l.res.Recv(mcapi.TimeoutInfinite)
		if err != nil {
			return
		}
		// The receiver owns each delivered packet exclusively, so the
		// payload may alias it instead of being copied.
		m, err := decodeResultShared(pkt)
		if err != nil {
			continue
		}
		select {
		case o.resCh <- arrival{dom: i, msg: m}:
		case <-o.stopCh:
			return
		}
	}
}

// healthLoop runs the shared heartbeat monitor over the cluster's links;
// a domain whose pongs stop for lostAfter is marked lost: it stops being
// scheduled, its process is killed, and the active region (if any) is
// told to reclaim the domain's in-flight chunks.
func (o *Offloader) healthLoop() {
	defer o.wg.Done()
	peers := make([]HealthPeer, len(o.cl.links))
	for i, l := range o.cl.links {
		peers[i] = HealthPeer{ID: l.d.id, State: l.health, PingTo: l.hbTo, PongFrom: l.hbFrom}
	}
	MonitorHealth(o.stopCh, o.cfg.heartbeat, o.cfg.lostAfter, peers,
		func(i int) {
			l := o.cl.links[i]
			o.st.domainsLost.Add(1)
			l.d.Kill()
			select {
			case o.lostCh <- i:
			default:
			}
		},
		func() { o.st.heartbeats.Add(1) },
		func() { o.st.pingDrops.Add(1) })
}

// flight tracks one chunk descriptor in flight to a domain.
type flight struct {
	dom     int
	attempt uint32
	expiry  time.Time
	sentAt  time.Time // dispatch time, for observed service-time feedback
	iters   int       // chunk width, to normalize the observation
}

// localResult is one chunk completed by the host's local executor.
type localResult struct {
	idx     int
	payload []byte
	err     error
	elapsed time.Duration
}

// ParallelFor runs kernel over iterations [0,n), splitting the space
// into chunks distributed across the worker domains and the host. The
// kernel must be registered; arg is passed opaquely to every chunk.
// Partial results are folded in ascending chunk order, so the result is
// deterministic regardless of which domain computed which chunk.
//
// If a worker domain dies mid-region its chunks are re-executed
// elsewhere: the full result is still returned, together with an error
// wrapping ErrDomainLost.
func (o *Offloader) ParallelFor(kernel string, n int, arg []byte) ([]byte, error) {
	return o.ParallelForObserved(kernel, n, arg, nil)
}

// ParallelForObserved is ParallelFor with a per-region observer: obs
// (may be nil) sees the region's chunk count once it is fixed and one
// ChunkDone per chunk as its first result is accepted.
func (o *Offloader) ParallelForObserved(kernel string, n int, arg []byte, obs RegionObserver) ([]byte, error) {
	if o.closed.Load() {
		return nil, ErrClosed
	}
	k, ok := o.reg.Lookup(kernel)
	if !ok {
		return nil, oerrors.Errorf(oerrors.Internal, oerrors.CodeUnknownJob, "offload: unknown kernel %q", kernel)
	}
	if n <= 0 {
		return nil, nil
	}

	o.regionMu.Lock()
	defer o.regionMu.Unlock()
	o.regionSeq++
	region := o.regionSeq
	o.st.regions.Add(1)
	o.drainStale()

	chunkIters := o.cfg.chunkIters
	if chunkIters <= 0 {
		executors := len(o.cl.links) + 1
		chunkIters = (n + 4*executors - 1) / (4 * executors)
		if chunkIters < 1 {
			chunkIters = 1
		}
	}
	type chunkRange struct{ lo, hi int }
	var chunks []chunkRange
	for lo := 0; lo < n; lo += chunkIters {
		hi := lo + chunkIters
		if hi > n {
			hi = n
		}
		chunks = append(chunks, chunkRange{lo, hi})
	}
	nc := len(chunks)
	if obs != nil {
		obs.RegionStart(nc)
	}
	attempt := make([]uint32, nc)
	forcedLocal := make([]bool, nc)
	done := make([]bool, nc)
	parts := make([][]byte, nc)
	remaining := nc
	pending := make([]int, nc)
	for i := range pending {
		pending[i] = i
	}
	inflight := make(map[int]flight, len(o.cl.links)*o.cfg.inflight)
	credits := make([]int, len(o.cl.links))
	for i := range credits {
		credits[i] = o.cfg.inflight
	}
	var localDispatched, remoteDispatched int

	// The local executor: one chunk at a time, fed only when the
	// scheduler decides the host's share warrants it.
	localCh := make(chan int, 1)
	localDone := make(chan localResult, 1)
	localBusy := false
	go func() {
		for idx := range localCh {
			start := time.Now()
			p, err := k.Chunk(o.cl.host, chunks[idx].lo, chunks[idx].hi, arg)
			localDone <- localResult{idx: idx, payload: p, err: err, elapsed: time.Since(start)}
		}
	}()
	defer close(localCh)

	// localShare weighs the host against the live domains using the
	// adaptive rates: observed per-chunk service times once primed, the
	// static perfmodel estimate before that.
	localShare := func() float64 {
		host := o.cl.hostRate()
		sum := host
		for li, l := range o.cl.links {
			if !l.health.Lost() {
				sum += o.cl.weightOf(li)
			}
		}
		return host / sum
	}

	encodeFor := func(ci int) []byte {
		return encodeChunk(chunkMsg{
			Region:  region,
			Chunk:   uint32(ci),
			Attempt: attempt[ci],
			Lo:      int64(chunks[ci].lo),
			Hi:      int64(chunks[ci].hi),
			Kernel:  kernel,
			Arg:     arg,
		})
	}

	// commit records one successfully sent chunk and drops it from the
	// pending queue (qi is its index there).
	commit := func(li, qi int) {
		ci := pending[qi]
		pending = append(pending[:qi], pending[qi+1:]...)
		credits[li]--
		remoteDispatched++
		now := time.Now()
		inflight[ci] = flight{
			dom:     li,
			attempt: attempt[ci],
			expiry:  now.Add(o.cfg.deadline),
			sentAt:  now,
			iters:   chunks[ci].hi - chunks[ci].lo,
		}
		if o.cfg.sink != nil {
			o.cfg.sink.OffloadSend(o.cl.links[li].d.id, ci)
		}
	}

	// pump tops up every live domain to its credit limit with
	// remote-eligible pending chunks. Non-blocking sends: a full command
	// queue just means "try again next round". With batching on (the
	// default), one flush coalesces a domain's whole top-up into a single
	// batch packet; off sends one packet per chunk, the ablation
	// baseline.
	pump := func() {
		for li, l := range o.cl.links {
			if l.health.Lost() || credits[li] == 0 {
				continue
			}
			// Indexes into pending of the chunks this domain gets.
			var sel []int
			for j, ci := range pending {
				if len(sel) >= credits[li] {
					break
				}
				if !forcedLocal[ci] {
					sel = append(sel, j)
				}
			}
			if len(sel) == 0 {
				return // nothing remote-eligible for any domain
			}
			if !o.cfg.batch {
				// Ablation baseline: one packet per chunk, stopping on
				// the first full queue.
				for credits[li] > 0 {
					qi := -1
					for j, ci := range pending {
						if !forcedLocal[ci] {
							qi = j
							break
						}
					}
					if qi < 0 {
						break
					}
					pkt := encodeFor(pending[qi])
					err := l.cmd.Send(pkt, mcapi.TimeoutImmediate)
					RecycleFrame(pkt)
					if err != nil {
						break
					}
					commit(li, qi)
				}
				continue
			}
			var b Batcher
			for _, qi := range sel {
				b.Add(encodeFor(pending[qi]))
			}
			if b.Flush(func(pkt []byte) error {
				return l.cmd.Send(pkt, mcapi.TimeoutImmediate)
			}) != nil {
				continue // full queue: every selected chunk stays pending
			}
			// Commit back to front so earlier pending indexes stay valid.
			for j := len(sel) - 1; j >= 0; j-- {
				commit(li, sel[j])
			}
		}
	}

	// maybeLocal feeds the host executor when it is idle and either a
	// chunk is pinned local, the remote side is saturated or gone, or the
	// host's perfmodel share says it should pull its weight.
	maybeLocal := func() {
		if localBusy || len(pending) == 0 {
			return
		}
		qi := -1
		for j, ci := range pending {
			if forcedLocal[ci] {
				qi = j
				break
			}
		}
		if qi < 0 {
			live, free := 0, false
			for li, l := range o.cl.links {
				if !l.health.Lost() {
					live++
					if credits[li] > 0 {
						free = true
					}
				}
			}
			run := live == 0 || !free
			if !run {
				frac := float64(localDispatched+1) / float64(localDispatched+remoteDispatched+1)
				run = frac <= localShare()
			}
			if !run {
				return
			}
			qi = len(pending) - 1 // steal from the tail, away from the remote FIFO
		}
		ci := pending[qi]
		pending = append(pending[:qi], pending[qi+1:]...)
		localCh <- ci
		localBusy = true
		localDispatched++
		if o.cfg.sink != nil {
			o.cfg.sink.OffloadSend(-1, ci)
		}
	}

	requeue := func(ci int) {
		attempt[ci]++
		o.st.resends.Add(1)
		if int(attempt[ci]) > o.cfg.retries {
			forcedLocal[ci] = true
		}
		pending = append(pending, ci)
	}

	scan := o.cfg.deadline / 4
	if scan < time.Millisecond {
		scan = time.Millisecond
	} else if scan > 25*time.Millisecond {
		scan = 25 * time.Millisecond
	}
	tick := time.NewTicker(scan)
	defer tick.Stop()

	var regionErr error
	for remaining > 0 {
		pump()
		maybeLocal()
		select {
		case a := <-o.resCh:
			if a.msg.Region != region {
				continue // straggler from an earlier region
			}
			l := o.cl.links[a.dom]
			if !l.health.Lost() && credits[a.dom] < o.cfg.inflight {
				credits[a.dom]++
			}
			ci := int(a.msg.Chunk)
			if ci < 0 || ci >= nc || done[ci] {
				continue // duplicate after a resend: first result won
			}
			switch a.msg.Status {
			case statusOK:
				done[ci] = true
				parts[ci] = a.msg.Payload
				remaining--
				if fl, ok := inflight[ci]; ok && fl.dom == a.dom && fl.iters > 0 {
					// Feed the observed service time back into this
					// domain's weight for the next scheduling decisions.
					l.ewma.Observe(float64(time.Since(fl.sentAt).Nanoseconds()) / float64(fl.iters))
					o.st.chunkAdaptations.Add(1)
				}
				delete(inflight, ci)
				o.st.remoteChunks.Add(1)
				if o.cfg.sink != nil {
					o.cfg.sink.OffloadRecv(l.d.id, ci)
				}
				if obs != nil {
					obs.ChunkDone(ci, l.d.id)
				}
			case statusUnknownKernel:
				return nil, oerrors.Errorf(oerrors.Internal, oerrors.CodeUnknownJob,
					"offload: domain %s does not know kernel %q", l.d.name, kernel)
			default:
				return nil, oerrors.Errorf(oerrors.Internal, oerrors.CodeJobFailed,
					"offload: kernel %q failed on %s: %s", kernel, l.d.name, a.msg.Payload)
			}

		case lr := <-localDone:
			localBusy = false
			if lr.err != nil {
				return nil, oerrors.Errorf(oerrors.Internal, oerrors.CodeJobFailed,
					"offload: kernel %q failed locally: %w", kernel, lr.err)
			}
			if !done[lr.idx] {
				done[lr.idx] = true
				parts[lr.idx] = lr.payload
				remaining--
				if iters := chunks[lr.idx].hi - chunks[lr.idx].lo; iters > 0 && lr.elapsed > 0 {
					o.cl.hostEwma.Observe(float64(lr.elapsed.Nanoseconds()) / float64(iters))
					o.st.chunkAdaptations.Add(1)
				}
				o.st.localChunks.Add(1)
				if o.cfg.sink != nil {
					o.cfg.sink.OffloadRecv(-1, lr.idx)
				}
				if obs != nil {
					obs.ChunkDone(lr.idx, -1)
				}
			}

		case li := <-o.lostCh:
			for ci, fl := range inflight {
				if fl.dom == li {
					delete(inflight, ci)
					requeue(ci)
				}
			}
			if regionErr == nil {
				l := o.cl.links[li]
				regionErr = oerrors.DomainLost(ErrDomainLost, "offload",
					l.d.id, l.d.name, l.health.Silence(),
					"chunks re-executed elsewhere")
			}

		case <-tick.C:
			now := time.Now()
			for ci, fl := range inflight {
				if now.After(fl.expiry) {
					delete(inflight, ci)
					requeue(ci)
				}
			}
		}
	}

	var acc []byte
	for ci := 0; ci < nc; ci++ {
		var err error
		if acc, err = k.Fold(acc, parts[ci]); err != nil {
			return nil, oerrors.Errorf(oerrors.Internal, oerrors.CodeJobFailed,
				"offload: fold chunk %d: %w", ci, err)
		}
	}
	return acc, regionErr
}

// drainStale empties events left over from previous regions. Stale
// results are identified by region ID anyway, and credits are
// per-region, so these can be dropped silently; a domain lost between
// regions has no in-flight chunks to reclaim.
func (o *Offloader) drainStale() {
	for {
		select {
		case <-o.resCh:
		case <-o.lostCh:
		default:
			return
		}
	}
}

// Close shuts the cluster down: workers get a best-effort shutdown
// message, the host's endpoints are finalized first (waking any worker
// blocked sending into a full host queue), then each domain is stopped
// and the host runtime closed. Idempotent.
func (o *Offloader) Close() error {
	if !o.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(o.stopCh)
	for _, l := range o.cl.links {
		if !l.health.Lost() {
			_ = l.cmd.Send([]byte{byte(kindShutdown)}, mcapi.TimeoutImmediate)
		}
	}
	_ = o.cl.hostNode.Finalize()
	for _, d := range o.cl.domains {
		d.stop()
	}
	o.wg.Wait()
	err := o.cl.host.Close()
	for _, p := range o.cl.net.HV.Partitions() {
		_ = o.cl.net.HV.Stop(p.Name)
	}
	return err
}
