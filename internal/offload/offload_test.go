package offload

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"openmpmca/internal/core"
	"openmpmca/internal/trace"
)

// trace.Recorder must satisfy EventSink so offload events land in the
// same ring as runtime events.
var _ EventSink = (*trace.Recorder)(nil)

// mix is a cheap deterministic hash so chunk results depend on the exact
// iteration indices computed.
func mix(i int64) int64 {
	x := uint64(i)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 29
	return int64(x % 1000003)
}

// sumKernel sums mix(i) over the chunk using the executing domain's
// OpenMP runtime; delay stretches each chunk so tests can inject faults
// mid-region.
func sumKernel(name string, delay time.Duration) FuncKernel {
	return FuncKernel{
		KernelName: name,
		ChunkFn: func(rt *core.Runtime, lo, hi int, arg []byte) ([]byte, error) {
			if delay > 0 {
				time.Sleep(delay)
			}
			var mu sync.Mutex
			var sum int64
			err := rt.ParallelForRange(hi-lo, func(l, h int) {
				var s int64
				for i := l; i < h; i++ {
					s += mix(int64(lo + i))
				}
				mu.Lock()
				sum += s
				mu.Unlock()
			})
			if err != nil {
				return nil, err
			}
			return binary.LittleEndian.AppendUint64(nil, uint64(sum)), nil
		},
		FoldFn: func(acc, part []byte) ([]byte, error) {
			if len(part) != 8 {
				return nil, fmt.Errorf("bad partial: %d bytes", len(part))
			}
			if acc == nil {
				acc = make([]byte, 8)
			}
			total := int64(binary.LittleEndian.Uint64(acc)) + int64(binary.LittleEndian.Uint64(part))
			binary.LittleEndian.PutUint64(acc, uint64(total))
			return acc, nil
		},
	}
}

func seqSum(n int) int64 {
	var s int64
	for i := 0; i < n; i++ {
		s += mix(int64(i))
	}
	return s
}

func decodeSum(t *testing.T, b []byte) int64 {
	t.Helper()
	if len(b) != 8 {
		t.Fatalf("result is %d bytes, want 8", len(b))
	}
	return int64(binary.LittleEndian.Uint64(b))
}

func TestParallelForDistributes(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register(sumKernel("sum", 0)); err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(4096)
	o, err := New(reg,
		WithDomains(3),
		WithHeartbeat(10*time.Millisecond),
		WithEventSink(rec),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()

	const n = 50000
	got, err := o.ParallelFor("sum", n, nil)
	if err != nil {
		t.Fatalf("ParallelFor: %v", err)
	}
	if want := seqSum(n); decodeSum(t, got) != want {
		t.Errorf("sum = %d, want %d", decodeSum(t, got), want)
	}

	st := o.Stats()
	if st.Regions != 1 {
		t.Errorf("Regions = %d, want 1", st.Regions)
	}
	if st.RemoteChunks == 0 {
		t.Error("no chunks ran remotely: offload did not distribute")
	}
	if st.DomainsLost != 0 {
		t.Errorf("DomainsLost = %d, want 0", st.DomainsLost)
	}
	sum := rec.Summary()
	if sum.OffloadSends == 0 || sum.OffloadRecvs == 0 {
		t.Errorf("trace recorded %d sends / %d recvs, want > 0", sum.OffloadSends, sum.OffloadRecvs)
	}
	if sum.OffloadRecvs != st.RemoteChunks+st.LocalChunks {
		t.Errorf("trace recvs %d != completed chunks %d", sum.OffloadRecvs, st.RemoteChunks+st.LocalChunks)
	}

	// A second region on the same offloader must work and keep counting.
	got, err = o.ParallelFor("sum", 1234, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := seqSum(1234); decodeSum(t, got) != want {
		t.Errorf("second region sum = %d, want %d", decodeSum(t, got), want)
	}
	if st := o.Stats(); st.Regions != 2 {
		t.Errorf("Regions = %d, want 2", st.Regions)
	}
}

func TestParallelForUnknownKernel(t *testing.T) {
	o, err := New(NewRegistry(), WithDomains(1))
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	if _, err := o.ParallelFor("nope", 10, nil); err == nil {
		t.Error("unknown kernel accepted")
	}
	if _, err := o.ParallelFor("nope", 0, nil); err == nil {
		t.Error("kernel name not validated for an empty region")
	}
}

// TestDomainLossMidRegion is the integration test the issue asks for:
// kill a domain while a region is in flight and assert the region still
// completes with the full, correct result, surfaces ErrDomainLost, and
// counts exactly one lost domain.
func TestDomainLossMidRegion(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register(sumKernel("sum", 3*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	o, err := New(reg,
		WithDomains(3),
		WithChunkIters(100),
		WithHeartbeat(5*time.Millisecond), // lost after 40ms
		WithChunkDeadline(150*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()

	// Crash domain 0 as soon as any chunk has completed remotely.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if o.Stats().RemoteChunks >= 1 {
				_ = o.KillDomain(0)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	const n = 15000 // 150 chunks of 100 iterations, ~3ms each
	got, err := o.ParallelFor("sum", n, nil)
	<-killed
	if !errors.Is(err, ErrDomainLost) {
		t.Errorf("region error = %v, want ErrDomainLost", err)
	}
	if want := seqSum(n); decodeSum(t, got) != want {
		t.Errorf("sum = %d, want %d: region lost work with the domain", decodeSum(t, got), want)
	}
	st := o.Stats()
	if st.DomainsLost != 1 {
		t.Errorf("DomainsLost = %d, want 1", st.DomainsLost)
	}
	if st.Resends == 0 {
		t.Error("Resends = 0: the dead domain's chunks were never re-dispatched")
	}

	// The survivors must still serve the next region.
	got, err = o.ParallelFor("sum", 2000, nil)
	if err != nil {
		t.Fatalf("region after loss: %v", err)
	}
	if want := seqSum(2000); decodeSum(t, got) != want {
		t.Errorf("post-loss sum = %d, want %d", decodeSum(t, got), want)
	}
	if st := o.Stats(); st.DomainsLost != 1 {
		t.Errorf("DomainsLost after second region = %d, want 1", st.DomainsLost)
	}
}

func TestKernelErrorPropagates(t *testing.T) {
	reg := NewRegistry()
	bad := FuncKernel{
		KernelName: "bad",
		ChunkFn: func(rt *core.Runtime, lo, hi int, arg []byte) ([]byte, error) {
			return nil, fmt.Errorf("synthetic failure")
		},
		FoldFn: func(acc, part []byte) ([]byte, error) { return acc, nil },
	}
	if err := reg.Register(bad); err != nil {
		t.Fatal(err)
	}
	o, err := New(reg, WithDomains(1))
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	if _, err := o.ParallelFor("bad", 100, nil); err == nil {
		t.Error("kernel error did not propagate")
	}
}

func TestOptionValidation(t *testing.T) {
	bad := []Option{
		WithDomains(0),
		WithDomains(65),
		WithBoard(nil),
		WithChunkIters(-1),
		WithChunkDeadline(0),
		WithRetries(-1),
		WithHeartbeat(0),
		WithInflight(0),
	}
	for i, opt := range bad {
		if _, err := New(NewRegistry(), opt); err == nil {
			t.Errorf("option %d accepted", i)
		}
	}
	if _, err := New(nil); err == nil {
		t.Error("nil registry accepted")
	}
}

func TestCloseIdempotentAndRejects(t *testing.T) {
	o, err := New(NewRegistry(), WithDomains(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := o.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := o.ParallelFor("sum", 10, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("ParallelFor after Close = %v, want ErrClosed", err)
	}
}

// TestChunkAdaptationsObserved: once a region completes, the scheduler
// must have folded observed per-chunk service times into the adaptive
// weights in place of the static perfmodel estimates.
func TestChunkAdaptationsObserved(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register(sumKernel("sum", 0)); err != nil {
		t.Fatal(err)
	}
	o, err := New(reg, WithDomains(2))
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()

	const n = 50000
	got, err := o.ParallelFor("sum", n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := seqSum(n); decodeSum(t, got) != want {
		t.Errorf("sum = %d, want %d", decodeSum(t, got), want)
	}
	st := o.Stats()
	if st.ChunkAdaptations == 0 {
		t.Error("ChunkAdaptations = 0: no observed service times fed the weights")
	}
	if done := st.RemoteChunks + st.LocalChunks; st.ChunkAdaptations > done {
		t.Errorf("ChunkAdaptations = %d > completed chunks = %d",
			st.ChunkAdaptations, done)
	}
}

// TestReadmitDomain: a lost domain, restarted, rejoins the fabric via
// ReadmitDomain and serves chunks again.
func TestReadmitDomain(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register(sumKernel("sum", 0)); err != nil {
		t.Fatal(err)
	}
	o, err := New(reg,
		WithDomains(2),
		WithHeartbeat(5*time.Millisecond), // lost after 40ms
	)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()

	// A live domain cannot be readmitted.
	if err := o.ReadmitDomain(0); err == nil {
		t.Error("ReadmitDomain accepted a live domain")
	}
	if err := o.ReadmitDomain(99); err == nil {
		t.Error("ReadmitDomain accepted an out-of-range index")
	}

	if err := o.KillDomain(0); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for o.Stats().DomainsLost == 0 {
		if time.Now().After(deadline) {
			t.Fatal("domain never declared lost")
		}
		time.Sleep(time.Millisecond)
	}

	if err := o.ReadmitDomain(0); err != nil {
		t.Fatalf("ReadmitDomain: %v", err)
	}
	if st := o.Stats(); st.Readmissions != 1 {
		t.Errorf("Readmissions = %d, want 1", st.Readmissions)
	}

	// The readmitted fabric must complete regions correctly again.
	const n = 20000
	got, err := o.ParallelFor("sum", n, nil)
	if err != nil {
		t.Fatalf("region after readmission: %v", err)
	}
	if want := seqSum(n); decodeSum(t, got) != want {
		t.Errorf("post-readmission sum = %d, want %d", decodeSum(t, got), want)
	}
	if st := o.Stats(); st.DomainsLost != 1 {
		t.Errorf("DomainsLost = %d, want 1 (readmission must not re-count)", st.DomainsLost)
	}
}
