package offload

import (
	"sync"
	"sync/atomic"
)

// Encode-buffer pooling for the wire codec. Every encode used to be a
// fresh make([]byte, ...); on the hot paths (one frame per chunk, task,
// result, credit and heartbeat) that allocation shows up directly in the
// fork/join and round-trip latencies the paper's Table I measures. The
// MCAPI transport copies payloads on send, so a sender may recycle a
// frame the moment Send returns — encode buffers therefore cycle through
// a sync.Pool instead of the garbage collector.
//
// SetCodecPooling(false) restores allocate-per-encode as an ablation
// baseline, keeping the optimization's contribution measurable.

// codecPooling gates encode-buffer reuse; on by default.
var codecPooling atomic.Bool

func init() { codecPooling.Store(true) }

// SetCodecPooling toggles encode-buffer pooling. It exists as an
// ablation knob for benchmarks; production callers leave it on.
func SetCodecPooling(on bool) { codecPooling.Store(on) }

// CodecPooling reports whether encode buffers are pooled.
func CodecPooling() bool { return codecPooling.Load() }

// maxPooledFrame bounds the backing arrays kept in the pool so one huge
// payload cannot pin memory forever.
const maxPooledFrame = 64 << 10

var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 256)
		return &b
	},
}

// frameBuf returns a zero-length buffer with at least the given
// capacity, pooled when pooling is enabled.
func frameBuf(capacity int) []byte {
	if !codecPooling.Load() || capacity > maxPooledFrame {
		return make([]byte, 0, capacity)
	}
	bp := framePool.Get().(*[]byte)
	if cap(*bp) >= capacity {
		return (*bp)[:0]
	}
	// Too small: retire this buffer's slot with a bigger array.
	return make([]byte, 0, capacity)
}

// RecycleFrame returns an encoded frame's backing array to the pool.
// Callers may recycle a frame as soon as it has been handed to an MCAPI
// send (the transport copies) and must not touch it afterwards. Safe to
// call with nil; a no-op when pooling is disabled.
func RecycleFrame(pkt []byte) {
	if pkt == nil || !codecPooling.Load() || cap(pkt) > maxPooledFrame {
		return
	}
	pkt = pkt[:0]
	framePool.Put(&pkt)
}
