package offload

import (
	"fmt"
	"sync"

	"openmpmca/internal/core"
)

// Kernel is a distributable parallel-for body. The same Kernel must be
// registered on every domain — in this simulation, in the one Registry
// the cluster shares — mirroring how real MCAPI offload ships the same
// program image to every partition: only descriptors and encoded results
// cross the wire, never code.
//
// Chunk executes iterations [lo,hi) on the executing domain's OpenMP
// runtime and returns the chunk's encoded partial result. Fold merges one
// partial into the host-side accumulator; the host always folds partials
// in ascending chunk order, so a deterministic Fold yields a
// deterministic region result no matter which domain computed what, or in
// what order results arrived.
type Kernel interface {
	Name() string
	Chunk(rt *core.Runtime, lo, hi int, arg []byte) ([]byte, error)
	Fold(acc, part []byte) ([]byte, error)
}

// FuncKernel adapts three funcs into a Kernel.
type FuncKernel struct {
	KernelName string
	ChunkFn    func(rt *core.Runtime, lo, hi int, arg []byte) ([]byte, error)
	FoldFn     func(acc, part []byte) ([]byte, error)
}

// Name implements Kernel.
func (k FuncKernel) Name() string { return k.KernelName }

// Chunk implements Kernel.
func (k FuncKernel) Chunk(rt *core.Runtime, lo, hi int, arg []byte) ([]byte, error) {
	return k.ChunkFn(rt, lo, hi, arg)
}

// Fold implements Kernel.
func (k FuncKernel) Fold(acc, part []byte) ([]byte, error) { return k.FoldFn(acc, part) }

// Registry maps kernel names to Kernels. One Registry is shared by the
// host and every worker domain of a cluster (the "same image everywhere"
// deployment model); it is safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	kernels map[string]Kernel
}

// NewRegistry creates an empty kernel registry.
func NewRegistry() *Registry {
	return &Registry{kernels: make(map[string]Kernel)}
}

// Register adds a kernel; registering a duplicate or empty name is an
// error (a silently replaced kernel would desynchronize host and
// domains).
func (g *Registry) Register(k Kernel) error {
	name := k.Name()
	if name == "" {
		return fmt.Errorf("offload: kernel with empty name")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, dup := g.kernels[name]; dup {
		return fmt.Errorf("offload: kernel %q already registered", name)
	}
	g.kernels[name] = k
	return nil
}

// Lookup resolves a kernel by name.
func (g *Registry) Lookup(name string) (Kernel, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	k, ok := g.kernels[name]
	return k, ok
}

// Names lists the registered kernels (unordered).
func (g *Registry) Names() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]string, 0, len(g.kernels))
	for n := range g.kernels {
		out = append(out, n)
	}
	return out
}
