package offload

import (
	"encoding/binary"
	"fmt"
)

// Wire codec extension for the MTAPI task fabric
// (internal/taskfabric). Task frames share the chunk offloader's wire
// conventions — little-endian integers, first byte is the kind — and
// extend its kind space, so a receiver draining a mixed channel can
// always classify a packet by its first byte. Like the chunk codec,
// nothing Go-specific crosses the wire: each job serializes its argument
// and result as opaque []byte.
//
//	task/yield: kind | task u64 | attempt u32 | group u64 |
//	            jobLen u16 | job | argLen u32 | arg
//	result:     kind | task u64 | attempt u32 | status u8 |
//	            payloadLen u32 | payload
//	credit:     kind | domain u32 | queued u32 | running u32
//	steal:      kind | want u32
//	groupdone:  kind | group u64
//	shutdown:   kind

// WireKind names the shared frame-kind byte for the task fabric; the
// chunk offloader's kinds stay private to this package.
type WireKind = msgKind

// Task fabric frame kinds, continuing the chunk offloader's private kind
// space (which ends at kindShutdown = 5).
const (
	KindTask           = msgKind(6 + iota) // host -> worker: execute a task
	KindTaskResult                         // worker -> host: task outcome
	KindTaskYield                          // worker -> host: stolen task returned unexecuted
	KindStealGrant                         // host -> worker: yield up to N queued tasks
	KindCredit                             // worker -> host: queue occupancy report
	KindGroupDone                          // host -> worker: drop queued tasks of a group
	KindFabricShutdown                     // host -> worker: stop the dispatcher
)

// Task result statuses.
const (
	StatusOK uint8 = iota
	StatusUnknownJob
	StatusJobError
)

// FrameKind classifies a task-fabric packet by its first byte; ok is
// false for empty packets or kinds outside the task-fabric range. Batch
// envelopes (KindBatch) are part of the range: a receiver unwraps them
// with DecodeBatch and classifies each inner frame. The mesh and
// zero-copy kinds (KindPeerSteal..KindLoadMap, see meshcodec.go) extend
// the range past KindBatch.
func FrameKind(pkt []byte) (WireKind, bool) {
	if len(pkt) == 0 {
		return 0, false
	}
	k := msgKind(pkt[0])
	return k, (k >= KindTask && k <= KindFabricShutdown) || (k >= KindBatch && k <= KindLoadMap)
}

// TaskFrame describes one task for a worker domain to execute (KindTask)
// or one a worker hands back unexecuted after a steal grant
// (KindTaskYield) — the same layout both directions, so a yielded task
// re-dispatches without re-encoding.
type TaskFrame struct {
	Task    uint64 // fabric-wide task ID
	Attempt uint32
	Group   uint64 // owning group ID; 0 = ungrouped
	Job     string
	Arg     []byte
}

// TaskResultFrame carries one task's outcome back to the host.
type TaskResultFrame struct {
	Task    uint64
	Attempt uint32
	Status  uint8
	Payload []byte
}

// CreditFrame reports a worker's queue occupancy; the host uses it to
// spot idle domains (steal thieves) and loaded ones (steal victims).
type CreditFrame struct {
	Domain  uint32
	Queued  uint32 // tasks accepted but not yet started
	Running uint32 // tasks currently executing
}

// StealGrantFrame asks a worker to yield up to Want queued tasks.
type StealGrantFrame struct {
	Want uint32
}

// GroupDoneFrame tells a worker a group completed or was canceled; it
// drops queued tasks belonging to that group.
type GroupDoneFrame struct {
	Group uint64
}

// EncodeTaskFrame encodes m under the given kind, which must be KindTask
// or KindTaskYield.
func EncodeTaskFrame(kind WireKind, m TaskFrame) []byte {
	buf := frameBuf(1 + 8 + 4 + 8 + 2 + len(m.Job) + 4 + len(m.Arg))
	buf = append(buf, byte(kind))
	buf = binary.LittleEndian.AppendUint64(buf, m.Task)
	buf = binary.LittleEndian.AppendUint32(buf, m.Attempt)
	buf = binary.LittleEndian.AppendUint64(buf, m.Group)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(m.Job)))
	buf = append(buf, m.Job...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Arg)))
	buf = append(buf, m.Arg...)
	return buf
}

// DecodeTaskFrame decodes a KindTask or KindTaskYield packet, copying
// the argument out of pkt; use DecodeTaskFrameShared when the caller
// owns pkt exclusively.
func DecodeTaskFrame(kind WireKind, pkt []byte) (TaskFrame, error) {
	return decodeTaskFrameBuf(kind, pkt, false)
}

// DecodeTaskFrameShared decodes with m.Arg aliasing pkt — no payload
// copy. Only for receivers that own the delivered packet exclusively
// (MCAPI delivers each packet to exactly one receiver, so dispatcher
// loops qualify); pkt must stay untouched while the frame is retained.
func DecodeTaskFrameShared(kind WireKind, pkt []byte) (TaskFrame, error) {
	return decodeTaskFrameBuf(kind, pkt, true)
}

func decodeTaskFrameBuf(kind WireKind, pkt []byte, share bool) (TaskFrame, error) {
	var m TaskFrame
	if len(pkt) < 1+8+4+8+2 || msgKind(pkt[0]) != kind {
		return m, fmt.Errorf("offload: malformed task frame (%d bytes)", len(pkt))
	}
	p := pkt[1:]
	m.Task = binary.LittleEndian.Uint64(p)
	m.Attempt = binary.LittleEndian.Uint32(p[8:])
	m.Group = binary.LittleEndian.Uint64(p[12:])
	jlen := int(binary.LittleEndian.Uint16(p[20:]))
	p = p[22:]
	if len(p) < jlen+4 {
		return m, fmt.Errorf("offload: task frame truncated in job name")
	}
	m.Job = string(p[:jlen])
	p = p[jlen:]
	alen := int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	if len(p) != alen {
		return m, fmt.Errorf("offload: task frame arg length %d, have %d bytes", alen, len(p))
	}
	if alen > 0 {
		if share {
			m.Arg = p
		} else {
			m.Arg = append([]byte(nil), p...)
		}
	}
	return m, nil
}

// EncodeTaskResult encodes a KindTaskResult packet.
func EncodeTaskResult(m TaskResultFrame) []byte {
	buf := frameBuf(1 + 8 + 4 + 1 + 4 + len(m.Payload))
	buf = append(buf, byte(KindTaskResult))
	buf = binary.LittleEndian.AppendUint64(buf, m.Task)
	buf = binary.LittleEndian.AppendUint32(buf, m.Attempt)
	buf = append(buf, m.Status)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Payload)))
	buf = append(buf, m.Payload...)
	return buf
}

// DecodeTaskResult decodes a KindTaskResult packet, copying the payload
// out of pkt; use DecodeTaskResultShared when the caller owns pkt
// exclusively.
func DecodeTaskResult(pkt []byte) (TaskResultFrame, error) {
	return decodeTaskResultBuf(pkt, false)
}

// DecodeTaskResultShared decodes with m.Payload aliasing pkt — no copy.
// Only for receivers that own the delivered packet exclusively; pkt must
// stay untouched while the result is retained.
func DecodeTaskResultShared(pkt []byte) (TaskResultFrame, error) {
	return decodeTaskResultBuf(pkt, true)
}

func decodeTaskResultBuf(pkt []byte, share bool) (TaskResultFrame, error) {
	var m TaskResultFrame
	if len(pkt) < 1+8+4+1+4 || msgKind(pkt[0]) != KindTaskResult {
		return m, fmt.Errorf("offload: malformed task result (%d bytes)", len(pkt))
	}
	p := pkt[1:]
	m.Task = binary.LittleEndian.Uint64(p)
	m.Attempt = binary.LittleEndian.Uint32(p[8:])
	m.Status = p[12]
	plen := int(binary.LittleEndian.Uint32(p[13:]))
	p = p[17:]
	if len(p) != plen {
		return m, fmt.Errorf("offload: task result payload length %d, have %d bytes", plen, len(p))
	}
	if plen > 0 {
		if share {
			m.Payload = p
		} else {
			m.Payload = append([]byte(nil), p...)
		}
	}
	return m, nil
}

// EncodeCredit encodes a KindCredit packet.
func EncodeCredit(m CreditFrame) []byte {
	buf := frameBuf(1 + 4 + 4 + 4)
	buf = append(buf, byte(KindCredit))
	buf = binary.LittleEndian.AppendUint32(buf, m.Domain)
	buf = binary.LittleEndian.AppendUint32(buf, m.Queued)
	buf = binary.LittleEndian.AppendUint32(buf, m.Running)
	return buf
}

// DecodeCredit decodes a KindCredit packet.
func DecodeCredit(pkt []byte) (CreditFrame, error) {
	var m CreditFrame
	if len(pkt) != 1+4+4+4 || msgKind(pkt[0]) != KindCredit {
		return m, fmt.Errorf("offload: malformed credit frame (%d bytes)", len(pkt))
	}
	m.Domain = binary.LittleEndian.Uint32(pkt[1:])
	m.Queued = binary.LittleEndian.Uint32(pkt[5:])
	m.Running = binary.LittleEndian.Uint32(pkt[9:])
	return m, nil
}

// EncodeStealGrant encodes a KindStealGrant packet.
func EncodeStealGrant(m StealGrantFrame) []byte {
	buf := frameBuf(1 + 4)
	buf = append(buf, byte(KindStealGrant))
	buf = binary.LittleEndian.AppendUint32(buf, m.Want)
	return buf
}

// DecodeStealGrant decodes a KindStealGrant packet.
func DecodeStealGrant(pkt []byte) (StealGrantFrame, error) {
	var m StealGrantFrame
	if len(pkt) != 1+4 || msgKind(pkt[0]) != KindStealGrant {
		return m, fmt.Errorf("offload: malformed steal grant (%d bytes)", len(pkt))
	}
	m.Want = binary.LittleEndian.Uint32(pkt[1:])
	return m, nil
}

// EncodeGroupDone encodes a KindGroupDone packet.
func EncodeGroupDone(m GroupDoneFrame) []byte {
	buf := frameBuf(1 + 8)
	buf = append(buf, byte(KindGroupDone))
	buf = binary.LittleEndian.AppendUint64(buf, m.Group)
	return buf
}

// DecodeGroupDone decodes a KindGroupDone packet.
func DecodeGroupDone(pkt []byte) (GroupDoneFrame, error) {
	var m GroupDoneFrame
	if len(pkt) != 1+8 || msgKind(pkt[0]) != KindGroupDone {
		return m, fmt.Errorf("offload: malformed group-done frame (%d bytes)", len(pkt))
	}
	m.Group = binary.LittleEndian.Uint64(pkt[1:])
	return m, nil
}

// EncodeFabricShutdown encodes the one-byte KindFabricShutdown packet.
func EncodeFabricShutdown() []byte { return []byte{byte(KindFabricShutdown)} }

// Heartbeat frames, re-exported for the task fabric: same ping/pong
// layout as the chunk offloader, so HealthState/MonitorHealth serve both
// subsystems unchanged.

// HBFrame is a heartbeat ping or pong.
type HBFrame = hbMsg

// EncodePing encodes a heartbeat ping.
func EncodePing(m HBFrame) []byte { return encodeHB(kindPing, m) }

// DecodePing decodes a heartbeat ping.
func DecodePing(msg []byte) (HBFrame, error) { return decodeHB(kindPing, msg) }

// EncodePong encodes a heartbeat pong.
func EncodePong(m HBFrame) []byte { return encodeHB(kindPong, m) }

// DecodePong decodes a heartbeat pong.
func DecodePong(msg []byte) (HBFrame, error) { return decodeHB(kindPong, msg) }
