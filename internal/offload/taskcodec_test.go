package offload

import (
	"bytes"
	"testing"
)

func TestTaskCodecRoundTrips(t *testing.T) {
	tf := TaskFrame{Task: 42, Attempt: 3, Group: 7, Job: "fib", Arg: []byte{1, 2, 3}}
	for _, kind := range []WireKind{KindTask, KindTaskYield} {
		got, err := DecodeTaskFrame(kind, EncodeTaskFrame(kind, tf))
		if err != nil {
			t.Fatalf("kind %d: %v", kind, err)
		}
		if got.Task != tf.Task || got.Attempt != tf.Attempt || got.Group != tf.Group ||
			got.Job != tf.Job || !bytes.Equal(got.Arg, tf.Arg) {
			t.Fatalf("kind %d: round trip %+v != %+v", kind, got, tf)
		}
	}

	res := TaskResultFrame{Task: 42, Attempt: 3, Status: StatusJobError, Payload: []byte("boom")}
	gotRes, err := DecodeTaskResult(EncodeTaskResult(res))
	if err != nil {
		t.Fatal(err)
	}
	if gotRes.Task != res.Task || gotRes.Attempt != res.Attempt ||
		gotRes.Status != res.Status || !bytes.Equal(gotRes.Payload, res.Payload) {
		t.Fatalf("result round trip %+v != %+v", gotRes, res)
	}

	cr := CreditFrame{Domain: 2, Queued: 5, Running: 1}
	if got, err := DecodeCredit(EncodeCredit(cr)); err != nil || got != cr {
		t.Fatalf("credit round trip: %+v, %v", got, err)
	}
	sg := StealGrantFrame{Want: 4}
	if got, err := DecodeStealGrant(EncodeStealGrant(sg)); err != nil || got != sg {
		t.Fatalf("steal grant round trip: %+v, %v", got, err)
	}
	gd := GroupDoneFrame{Group: 9}
	if got, err := DecodeGroupDone(EncodeGroupDone(gd)); err != nil || got != gd {
		t.Fatalf("group-done round trip: %+v, %v", got, err)
	}
	hb := HBFrame{Domain: 1, Seq: 99}
	if got, err := DecodePing(EncodePing(hb)); err != nil || got != hb {
		t.Fatalf("ping round trip: %+v, %v", got, err)
	}
	if got, err := DecodePong(EncodePong(hb)); err != nil || got != hb {
		t.Fatalf("pong round trip: %+v, %v", got, err)
	}
}

func TestFrameKindClassifies(t *testing.T) {
	if _, ok := FrameKind(nil); ok {
		t.Fatal("empty packet classified as task-fabric frame")
	}
	if _, ok := FrameKind([]byte{byte(kindChunk)}); ok {
		t.Fatal("chunk kind classified as task-fabric frame")
	}
	k, ok := FrameKind(EncodeFabricShutdown())
	if !ok || k != KindFabricShutdown {
		t.Fatalf("shutdown frame: kind %d ok=%v", k, ok)
	}
	if k, ok := FrameKind(EncodeCredit(CreditFrame{})); !ok || k != KindCredit {
		t.Fatalf("credit frame: kind %d ok=%v", k, ok)
	}
}

// FuzzTaskCodec feeds arbitrary bytes to every task-fabric decoder — no
// input may panic — and, when a decode succeeds, re-encodes and checks
// the bytes round-trip exactly (the canonical-form property the host
// relies on when it re-dispatches a yielded task frame verbatim).
func FuzzTaskCodec(f *testing.F) {
	f.Add(EncodeTaskFrame(KindTask, TaskFrame{Task: 1, Job: "j", Arg: []byte{9}}))
	f.Add(EncodeTaskFrame(KindTaskYield, TaskFrame{Task: 2, Group: 3}))
	f.Add(EncodeTaskResult(TaskResultFrame{Task: 1, Payload: []byte("x")}))
	f.Add(EncodeCredit(CreditFrame{Domain: 1, Queued: 2}))
	f.Add(EncodeStealGrant(StealGrantFrame{Want: 2}))
	f.Add(EncodeGroupDone(GroupDoneFrame{Group: 5}))
	f.Add(EncodePing(HBFrame{Domain: 1, Seq: 2}))
	f.Add(EncodePeerSteal(PeerStealFrame{Thief: 1, Want: 2}))
	f.Add(EncodePeerYield(PeerYieldFrame{Victim: 1, Task: TaskFrame{Task: 4, Job: "j"}}))
	f.Add(EncodeStealMoved(StealMovedFrame{Task: 4, Thief: 1, Victim: 2}))
	f.Add(EncodeRmemDesc(RmemDescFrame{Inner: KindTask, Owner: 1, Offset: 64, Length: 9,
		Header: EncodeTaskFrame(KindTask, TaskFrame{Task: 4, Job: "j"})}))
	f.Add(EncodeRmemAck(RmemAckFrame{Owner: 1, Offset: 64}))
	f.Add(EncodeLoadMap(LoadMapFrame{Occ: []uint32{1, 0, 3}}))
	f.Add([]byte{})
	f.Add([]byte{byte(KindTask)})
	f.Fuzz(func(t *testing.T, pkt []byte) {
		if m, err := DecodeTaskFrame(KindTask, pkt); err == nil {
			if !bytes.Equal(EncodeTaskFrame(KindTask, m), pkt) {
				t.Fatalf("task frame not canonical: % x", pkt)
			}
		}
		if m, err := DecodeTaskFrame(KindTaskYield, pkt); err == nil {
			if !bytes.Equal(EncodeTaskFrame(KindTaskYield, m), pkt) {
				t.Fatalf("yield frame not canonical: % x", pkt)
			}
		}
		if m, err := DecodeTaskResult(pkt); err == nil {
			if !bytes.Equal(EncodeTaskResult(m), pkt) {
				t.Fatalf("result frame not canonical: % x", pkt)
			}
		}
		if m, err := DecodeCredit(pkt); err == nil {
			if !bytes.Equal(EncodeCredit(m), pkt) {
				t.Fatalf("credit frame not canonical: % x", pkt)
			}
		}
		if m, err := DecodeStealGrant(pkt); err == nil {
			if !bytes.Equal(EncodeStealGrant(m), pkt) {
				t.Fatalf("steal grant not canonical: % x", pkt)
			}
		}
		if m, err := DecodeGroupDone(pkt); err == nil {
			if !bytes.Equal(EncodeGroupDone(m), pkt) {
				t.Fatalf("group-done frame not canonical: % x", pkt)
			}
		}
		if m, err := DecodePing(pkt); err == nil {
			if !bytes.Equal(EncodePing(m), pkt) {
				t.Fatalf("ping not canonical: % x", pkt)
			}
		}
		if m, err := DecodePong(pkt); err == nil {
			if !bytes.Equal(EncodePong(m), pkt) {
				t.Fatalf("pong not canonical: % x", pkt)
			}
		}
		if m, err := DecodePeerSteal(pkt); err == nil {
			if !bytes.Equal(EncodePeerSteal(m), pkt) {
				t.Fatalf("peer-steal not canonical: % x", pkt)
			}
		}
		if m, err := DecodePeerYield(pkt); err == nil {
			if !bytes.Equal(EncodePeerYield(m), pkt) {
				t.Fatalf("peer-yield not canonical: % x", pkt)
			}
		}
		if m, err := DecodeStealMoved(pkt); err == nil {
			if !bytes.Equal(EncodeStealMoved(m), pkt) {
				t.Fatalf("steal-moved not canonical: % x", pkt)
			}
		}
		if m, err := DecodeRmemDesc(pkt); err == nil {
			if !bytes.Equal(EncodeRmemDesc(m), pkt) {
				t.Fatalf("rmem-desc not canonical: % x", pkt)
			}
		}
		if m, err := DecodeRmemAck(pkt); err == nil {
			if !bytes.Equal(EncodeRmemAck(m), pkt) {
				t.Fatalf("rmem-ack not canonical: % x", pkt)
			}
		}
		if m, err := DecodeLoadMap(pkt); err == nil {
			if !bytes.Equal(EncodeLoadMap(m), pkt) {
				t.Fatalf("load-map not canonical: % x", pkt)
			}
		}
	})
}
