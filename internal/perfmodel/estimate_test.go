package perfmodel

import (
	"testing"

	"openmpmca/internal/platform"
)

func TestEstimateRegionNsMatchesReplay(t *testing.T) {
	b := platform.T4240RDB()
	prof := KernelProfile{Name: "est", CyclesPerUnit: 50, MemoryIntensity: 0.2}
	const threads, units = 8, 1e6

	m := New(b, prof)
	m.Fork(threads)
	for tid := 0; tid < threads; tid++ {
		m.Charge(tid, units/threads)
	}
	m.Join()
	want := m.Seconds() * 1e9

	if got := EstimateRegionNs(b, prof, threads, units); got != want {
		t.Errorf("EstimateRegionNs = %g, replayed model says %g", got, want)
	}
}

func TestEstimateRegionNsScales(t *testing.T) {
	b := platform.T4240RDB()
	prof := KernelProfile{Name: "est", CyclesPerUnit: 100}
	const units = 1e8
	one := EstimateRegionNs(b, prof, 1, units)
	twelve := EstimateRegionNs(b, prof, 12, units)
	if twelve >= one {
		t.Errorf("12 threads (%g ns) should beat 1 thread (%g ns) on %g units", twelve, one, float64(units))
	}
	if got := EstimateRegionNs(b, prof, 0, units); got != one {
		t.Errorf("threads < 1 should clamp to 1: got %g, want %g", got, one)
	}
}
