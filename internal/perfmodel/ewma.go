package perfmodel

import "sync"

// ServiceEWMA tracks an exponentially weighted moving average of an
// observed service metric — typically nanoseconds per iteration or per
// task measured on one runtime domain. The offload scheduler and the
// task fabric use one per domain to replace the static EstimateRegionNs
// weight with reality as completions stream in: the first observation
// primes the average, later ones fold in with weight alpha.
//
// The zero value is not usable; create with NewServiceEWMA. Safe for
// concurrent use.
type ServiceEWMA struct {
	mu    sync.Mutex
	alpha float64
	value float64
	n     uint64
}

// DefaultEWMAAlpha is the smoothing factor used when NewServiceEWMA is
// given a factor outside (0,1]: recent completions dominate quickly
// without letting a single outlier whipsaw the schedule.
const DefaultEWMAAlpha = 0.3

// NewServiceEWMA creates an empty average with the given smoothing
// factor; alpha outside (0,1] falls back to DefaultEWMAAlpha.
func NewServiceEWMA(alpha float64) *ServiceEWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultEWMAAlpha
	}
	return &ServiceEWMA{alpha: alpha}
}

// Observe folds one measurement into the average. Non-positive
// observations are ignored: a zero-duration service time is a clock
// artifact, and folding it in would drive a weight to infinity.
func (e *ServiceEWMA) Observe(v float64) {
	if v <= 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.n == 0 {
		e.value = v
	} else {
		e.value = e.alpha*v + (1-e.alpha)*e.value
	}
	e.n++
}

// Value returns the current average and whether it has been primed by at
// least one observation.
func (e *ServiceEWMA) Value() (float64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.value, e.n > 0
}

// Samples reports how many observations have been folded in.
func (e *ServiceEWMA) Samples() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.n
}
