package perfmodel

import (
	"math"
	"sync"
	"testing"
)

func TestServiceEWMAPrimesOnFirstObservation(t *testing.T) {
	e := NewServiceEWMA(0.3)
	if _, ok := e.Value(); ok {
		t.Fatal("empty EWMA reports primed")
	}
	e.Observe(100)
	v, ok := e.Value()
	if !ok || v != 100 {
		t.Fatalf("after one observation Value() = %v,%v, want 100,true", v, ok)
	}
	if e.Samples() != 1 {
		t.Fatalf("Samples = %d, want 1", e.Samples())
	}
}

func TestServiceEWMASmoothing(t *testing.T) {
	e := NewServiceEWMA(0.5)
	e.Observe(100)
	e.Observe(200)
	v, _ := e.Value()
	if math.Abs(v-150) > 1e-9 {
		t.Fatalf("EWMA after 100,200 with alpha 0.5 = %v, want 150", v)
	}
	e.Observe(150)
	v, _ = e.Value()
	if math.Abs(v-150) > 1e-9 {
		t.Fatalf("EWMA = %v, want 150", v)
	}
}

func TestServiceEWMAIgnoresNonPositive(t *testing.T) {
	e := NewServiceEWMA(0.3)
	e.Observe(0)
	e.Observe(-5)
	if _, ok := e.Value(); ok {
		t.Fatal("non-positive observations primed the average")
	}
	e.Observe(42)
	e.Observe(0)
	if v, _ := e.Value(); v != 42 {
		t.Fatalf("Value = %v, want 42 (zero must be ignored)", v)
	}
}

func TestServiceEWMABadAlphaFallsBack(t *testing.T) {
	for _, alpha := range []float64{0, -1, 1.5} {
		e := NewServiceEWMA(alpha)
		if e.alpha != DefaultEWMAAlpha {
			t.Errorf("NewServiceEWMA(%v).alpha = %v, want %v", alpha, e.alpha, DefaultEWMAAlpha)
		}
	}
}

func TestServiceEWMAConcurrent(t *testing.T) {
	e := NewServiceEWMA(0.3)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 1; j <= 100; j++ {
				e.Observe(float64(j))
				e.Value()
			}
		}()
	}
	wg.Wait()
	if e.Samples() != 800 {
		t.Fatalf("Samples = %d, want 800", e.Samples())
	}
	if v, ok := e.Value(); !ok || v <= 0 || v > 100 {
		t.Fatalf("Value = %v,%v out of range", v, ok)
	}
}
