// Package perfmodel is the deterministic virtual-time engine that stands in
// for wall-clock measurement on the modeled board.
//
// The build host for this reproduction has no T4240 (and may have a single
// CPU), so wall-clock scaling curves are meaningless. Instead, the OpenMP
// runtime's Monitor hook feeds this model a trace of events — team forks,
// per-thread work charges, barriers, critical sections, reductions — and
// the model advances one virtual clock per thread using the board's cost
// parameters:
//
//   - compute charges advance a thread's clock by units·cycles-per-unit at
//     the thread's effective speed, which degrades when its core's second
//     SMT thread is active (kernel-dependent SMT yield) and when many
//     active cores contend for shared memory bandwidth (kernel-dependent
//     memory intensity);
//   - barriers and reductions align all clocks to the maximum plus a
//     fabric-dependent synchronization cost, with a penalty when the team
//     spans clusters;
//   - charges inside a critical section serialize on a shared chain clock,
//     so contended criticals cost what they would on hardware;
//   - fork/join costs are charged per region.
//
// Threads are placed breadth-first over cores (spread placement): with n ≤
// cores every thread owns a core; past that, SMT siblings fill in — the
// placement that produces the paper's Figure 4 knee at 12 threads on the
// T4240.
//
// The result is host-independent and reproducible to the bit, while the
// computation whose time is being modeled still executes for real through
// the runtime under test.
package perfmodel

import (
	"fmt"
	"sync"

	"openmpmca/internal/platform"
)

// KernelProfile captures how one workload interacts with the board's
// shared resources.
type KernelProfile struct {
	// Name labels the profile in reports.
	Name string
	// CyclesPerUnit converts the kernel's abstract work units into core
	// cycles (calibration constant).
	CyclesPerUnit float64
	// SMTYield is the marginal throughput of a core's second hardware
	// thread for THIS kernel: latency-bound code (EP's transcendentals)
	// hides stalls and yields near 1.0; throughput/memory-bound kernels
	// yield far less. Zero means "use the board default".
	SMTYield float64
	// MemoryIntensity ∈ [0,1] scales the shared-memory contention term:
	// 0 = fits in L1, 1 = streams from DRAM.
	MemoryIntensity float64
}

// memContentionPerCore is the fractional slowdown each additional active
// core adds for a fully memory-bound kernel (MemoryIntensity 1).
const memContentionPerCore = 0.012

// Scales multiply the model's runtime-management costs, letting a real
// host-side measurement (the EPCC suite) inject the RELATIVE cost of one
// thread layer versus another into the virtual clock: the Figure 4
// harness measures the MCA/native overhead ratio per construct on the
// host and models the MCA runs with these factors. All 1.0 means "the
// board's base costs, unscaled".
type Scales struct {
	// Fork scales team fork/join cost (EPCC "parallel").
	Fork float64
	// Sync scales barrier and implicit-barrier cost (EPCC "barrier").
	Sync float64
	// Reduction scales the reduction combine cost (EPCC "reduction").
	Reduction float64
}

// UnitScales is the identity scaling.
func UnitScales() Scales { return Scales{Fork: 1, Sync: 1, Reduction: 1} }

// normalized guards against zero/negative factors from noisy
// measurements.
func (s Scales) normalized() Scales {
	clamp := func(v float64) float64 {
		if v <= 0 {
			return 1
		}
		return v
	}
	return Scales{Fork: clamp(s.Fork), Sync: clamp(s.Sync), Reduction: clamp(s.Reduction)}
}

// Model implements core.Monitor, accumulating virtual time for a single
// (kernel, board) pair. Create one per measured run.
type Model struct {
	board *platform.Board
	prof  KernelProfile
	scale Scales

	mu        sync.Mutex
	team      int
	clocks    []float64 // per-thread virtual ns within the current region
	inCrit    []bool
	critChain float64 // serialization clock for critical sections
	totalNs   float64 // accumulated across regions
	regions   int
}

// New builds a model for the given board and kernel profile.
func New(b *platform.Board, prof KernelProfile) *Model {
	if prof.SMTYield == 0 {
		prof.SMTYield = b.SMTYield
	}
	if prof.CyclesPerUnit <= 0 {
		prof.CyclesPerUnit = 1
	}
	return &Model{board: b, prof: prof, scale: UnitScales()}
}

// NewScaled builds a model whose runtime-management costs are multiplied
// by the given (typically EPCC-measured) factors.
func NewScaled(b *platform.Board, prof KernelProfile, s Scales) *Model {
	m := New(b, prof)
	m.scale = s.normalized()
	return m
}

// Scale returns the model's management-cost factors.
func (m *Model) Scale() Scales { return m.scale }

// Board returns the modeled board.
func (m *Model) Board() *platform.Board { return m.board }

// Profile returns the kernel profile in use.
func (m *Model) Profile() KernelProfile { return m.prof }

// Seconds reports the accumulated virtual time.
func (m *Model) Seconds() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.totalNs / 1e9
}

// Regions reports how many parallel regions have completed.
func (m *Model) Regions() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.regions
}

// Reset clears the accumulated time so one model can measure several runs.
func (m *Model) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.totalNs = 0
	m.regions = 0
	m.team = 0
	m.clocks = nil
}

// ----- placement and speed -----

// activeCores reports how many physical cores a breadth-first placement of
// n threads touches.
func (m *Model) activeCores(n int) int {
	if n > m.board.Cores {
		return m.board.Cores
	}
	return n
}

// shared reports whether thread tid shares its core with another active
// thread under breadth-first placement of team threads.
func (m *Model) shared(tid, team int) bool {
	cores := m.board.Cores
	if m.board.ThreadsPerCore < 2 || team <= cores {
		return false
	}
	if tid >= cores {
		return true // second SMT slot, sibling tid-cores is active
	}
	return tid < team-cores // sibling tid+cores is active
}

// nsPerUnit returns the virtual nanoseconds one work unit costs thread tid.
func (m *Model) nsPerUnit(tid int) float64 {
	cycles := m.prof.CyclesPerUnit
	speed := 1.0
	if m.shared(tid, m.team) {
		// Two threads share the core's pipes: each runs at (1+yield)/2 of
		// a dedicated core.
		speed = (1 + m.prof.SMTYield) / 2
	}
	// Shared-memory contention grows with active cores.
	contention := 1 + m.prof.MemoryIntensity*memContentionPerCore*float64(m.activeCores(m.team)-1)
	return cycles / speed * contention / m.board.CyclesPerSecond() * 1e9
}

// clustersSpanned reports how many clusters the active cores cover.
func (m *Model) clustersSpanned() int {
	if m.board.CoresPerCluster <= 1 {
		return 1
	}
	cores := m.activeCores(m.team)
	return (cores + m.board.CoresPerCluster - 1) / m.board.CoresPerCluster
}

// syncCost returns the virtual cost of a full-team synchronization.
func (m *Model) syncCost() float64 {
	c := m.board.BarrierBaseNs + float64(m.team)*m.board.BarrierPerThreadNs
	if m.clustersSpanned() > 1 {
		c *= m.board.CrossClusterPenalty
	}
	return c * m.scale.Sync
}

// ----- core.Monitor implementation -----

// Fork starts a region of n threads.
func (m *Model) Fork(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.team = n
	m.clocks = make([]float64, n)
	m.inCrit = make([]bool, n)
	m.critChain = 0
	// Team activation: the master wakes n-1 workers.
	m.totalNs += (m.board.ForkBaseNs + float64(n)*m.board.ForkPerThreadNs) * m.scale.Fork
}

// Join ends the region: its time is the slowest thread plus join cost.
func (m *Model) Join() {
	m.mu.Lock()
	defer m.mu.Unlock()
	maxNs := 0.0
	for _, c := range m.clocks {
		if c > maxNs {
			maxNs = c
		}
	}
	m.totalNs += maxNs + m.syncCost() // implicit end-of-region barrier
	m.regions++
	m.team = 0
	m.clocks = nil
}

// Charge advances tid's clock; charges inside a critical section serialize
// on the chain clock.
func (m *Model) Charge(tid int, units float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if tid >= len(m.clocks) {
		return
	}
	ns := units * m.nsPerUnit(tid)
	if m.inCrit[tid] {
		if m.clocks[tid] < m.critChain {
			m.clocks[tid] = m.critChain
		}
		m.clocks[tid] += ns
		m.critChain = m.clocks[tid]
		return
	}
	m.clocks[tid] += ns
}

// Barrier aligns all clocks to the maximum plus the sync cost.
func (m *Model) Barrier() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.alignLocked(m.syncCost())
}

func (m *Model) alignLocked(cost float64) {
	maxNs := 0.0
	for _, c := range m.clocks {
		if c > maxNs {
			maxNs = c
		}
	}
	maxNs += cost
	for i := range m.clocks {
		m.clocks[i] = maxNs
	}
}

// CriticalEnter begins serialized accounting for tid.
func (m *Model) CriticalEnter(tid int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if tid >= len(m.inCrit) {
		return
	}
	m.inCrit[tid] = true
	if m.clocks[tid] > m.critChain {
		m.critChain = m.clocks[tid]
	}
}

// CriticalExit ends serialized accounting for tid.
func (m *Model) CriticalExit(tid int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if tid >= len(m.inCrit) {
		return
	}
	m.inCrit[tid] = false
}

// Single charges the dispatch cost of winning a single construct.
func (m *Model) Single(tid int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if tid >= len(m.clocks) {
		return
	}
	m.clocks[tid] += m.board.BarrierBaseNs / 4
}

// Reduction aligns the team and charges the combine sweep.
func (m *Model) Reduction(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.alignLocked(m.syncCost() + float64(n)*20*m.scale.Reduction)
}

// Task is a no-op for the model: a task body's work reaches the clocks
// through the Charge calls it issues on the executing thread, so charging
// dispatch again here would double-count.
func (m *Model) Task(int) {}

// Steal is a no-op for the model: steal cost on the modeled board is a
// per-worker lock handoff, far below the model's resolution.
func (m *Model) Steal(int, int) {}

// NestedFork keeps attributing a serialized nested region's work to the
// outer thread; unlike Fork it must not reset the region clocks.
func (m *Model) NestedFork(int, int) {}

// NestedJoin mirrors NestedFork.
func (m *Model) NestedJoin(int) {}

// Cancel is a no-op for the model: a canceled region's threads stop
// charging work, which is already the only signal the virtual clocks
// consume.
func (m *Model) Cancel() {}

// Utilization reports, for the current (unfinished) region, each
// thread's busy fraction relative to the busiest thread — the imbalance
// view a profiler would show. Empty outside a region.
func (m *Model) Utilization() []float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.clocks) == 0 {
		return nil
	}
	maxNs := 0.0
	for _, c := range m.clocks {
		if c > maxNs {
			maxNs = c
		}
	}
	out := make([]float64, len(m.clocks))
	if maxNs == 0 {
		return out
	}
	for i, c := range m.clocks {
		out[i] = c / maxNs
	}
	return out
}

func (m *Model) String() string {
	return fmt.Sprintf("perfmodel(%s on %s)", m.prof.Name, m.board.Name)
}

// EstimateRegionNs predicts the virtual time of one perfectly balanced
// parallel-for region: units of total work split evenly over threads on
// board b under prof, including fork/join and the implicit end-of-region
// barrier. It replays the region through a throwaway Model, so the
// estimate is exactly what the Monitor hooks would accumulate for the
// same region — no second cost formula to drift out of sync. The offload
// planner uses the reciprocal as a domain's service rate when deciding
// how to interleave local and remote chunks.
func EstimateRegionNs(b *platform.Board, prof KernelProfile, threads int, units float64) float64 {
	if threads < 1 {
		threads = 1
	}
	m := New(b, prof)
	m.Fork(threads)
	per := units / float64(threads)
	for tid := 0; tid < threads; tid++ {
		m.Charge(tid, per)
	}
	m.Join()
	return m.Seconds() * 1e9
}
