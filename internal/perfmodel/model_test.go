package perfmodel

import (
	"math"
	"testing"

	"openmpmca/internal/core"
	"openmpmca/internal/platform"
)

func computeProfile() KernelProfile {
	return KernelProfile{Name: "compute", CyclesPerUnit: 1, SMTYield: 0.9, MemoryIntensity: 0}
}

// simulate runs W work units split perfectly over n threads with one
// barrier, and returns the modeled seconds.
func simulate(t *testing.T, b *platform.Board, prof KernelProfile, n int, work float64) float64 {
	t.Helper()
	m := New(b, prof)
	m.Fork(n)
	for tid := 0; tid < n; tid++ {
		m.Charge(tid, work/float64(n))
	}
	m.Barrier()
	m.Join()
	return m.Seconds()
}

func TestModelDeterministic(t *testing.T) {
	b := platform.T4240RDB()
	a := simulate(t, b, computeProfile(), 8, 1e9)
	bb := simulate(t, b, computeProfile(), 8, 1e9)
	if a != bb {
		t.Errorf("model not deterministic: %v vs %v", a, bb)
	}
}

func TestSpeedupMonotoneUpToCores(t *testing.T) {
	b := platform.T4240RDB()
	t1 := simulate(t, b, computeProfile(), 1, 1e10)
	prev := t1
	for n := 2; n <= b.Cores; n++ {
		tn := simulate(t, b, computeProfile(), n, 1e10)
		if tn >= prev {
			t.Errorf("time did not drop from %d to %d threads: %v -> %v", n-1, n, prev, tn)
		}
		prev = tn
	}
	// Near-ideal at 12 threads for compute-bound work.
	s12 := t1 / prev
	if s12 < 10.5 || s12 > 12.0 {
		t.Errorf("speedup at 12 threads = %.2f, want ~11-12", s12)
	}
}

func TestSMTKneePast12Threads(t *testing.T) {
	// Per-thread marginal gain must drop once SMT siblings activate.
	b := platform.T4240RDB()
	prof := KernelProfile{Name: "mem", CyclesPerUnit: 1, SMTYield: 0.35, MemoryIntensity: 0.6}
	t1 := simulate(t, b, prof, 1, 1e10)
	t12 := simulate(t, b, prof, 12, 1e10)
	t24 := simulate(t, b, prof, 24, 1e10)
	s12 := t1 / t12
	s24 := t1 / t24
	if s24 <= s12 {
		t.Errorf("24 threads (%.2fx) should still beat 12 (%.2fx)", s24, s12)
	}
	gainPerThreadLow := (s24 - s12) / 12
	gainPerThreadHigh := s12 / 12
	if gainPerThreadLow >= gainPerThreadHigh*0.8 {
		t.Errorf("no SMT knee: marginal gain %.3f vs base %.3f", gainPerThreadLow, gainPerThreadHigh)
	}
	// Memory-bound kernels land around the paper's ~15x at 24 threads.
	if s24 < 11 || s24 > 19 {
		t.Errorf("speedup at 24 = %.2f, want in the paper's ~15x band", s24)
	}
}

func TestEPLikeProfileNearIdealAt24(t *testing.T) {
	b := platform.T4240RDB()
	prof := KernelProfile{Name: "ep", CyclesPerUnit: 1, SMTYield: 0.95, MemoryIntensity: 0.02}
	t1 := simulate(t, b, prof, 1, 1e11)
	t24 := simulate(t, b, prof, 24, 1e11)
	s24 := t1 / t24
	if s24 < 20 {
		t.Errorf("EP-like speedup at 24 = %.2f, want near-ideal (>20)", s24)
	}
}

func TestP4080CapsAtEightCores(t *testing.T) {
	b := platform.P4080DS()
	prof := computeProfile()
	t1 := simulate(t, b, prof, 1, 1e10)
	t8 := simulate(t, b, prof, 8, 1e10)
	if s := t1 / t8; s < 7 || s > 8 {
		t.Errorf("P4080 speedup at 8 = %.2f, want ~7-8", s)
	}
}

func TestBarrierCostGrowsWithTeamAndClusters(t *testing.T) {
	b := platform.T4240RDB()
	m := New(b, computeProfile())
	// 4 threads: one cluster; 8: two clusters -> penalty applies.
	m.Fork(4)
	c4 := m.syncCost()
	m.Fork(8)
	c8 := m.syncCost()
	if c8 <= c4 {
		t.Errorf("sync cost must grow: %v -> %v", c4, c8)
	}
	m.Fork(4)
	if m.clustersSpanned() != 1 {
		t.Errorf("4 threads span %d clusters, want 1", m.clustersSpanned())
	}
	m.Fork(20)
	if m.clustersSpanned() != 3 {
		t.Errorf("20 threads span %d clusters, want 3", m.clustersSpanned())
	}
}

func TestCriticalChargesSerialize(t *testing.T) {
	b := platform.T4240RDB()
	m := New(b, computeProfile())
	const work = 1e6
	m.Fork(4)
	// Each thread does `work` inside a critical: virtual time must be
	// ~4x work, not ~1x (the serialization the paper's Table I
	// "critical" row measures).
	for tid := 0; tid < 4; tid++ {
		m.CriticalEnter(tid)
		m.Charge(tid, work)
		m.CriticalExit(tid)
	}
	m.Join()
	serialized := m.Seconds()

	m2 := New(b, computeProfile())
	m2.Fork(4)
	for tid := 0; tid < 4; tid++ {
		m2.Charge(tid, work)
	}
	m2.Join()
	parallel := m2.Seconds()

	if serialized < 3*parallel {
		t.Errorf("critical not serialized: crit=%v par=%v", serialized, parallel)
	}
}

func TestSharedPlacement(t *testing.T) {
	b := platform.T4240RDB()
	m := New(b, computeProfile())
	m.Fork(13) // 13 threads on 12 cores: exactly one core doubled
	sharedCount := 0
	for tid := 0; tid < 13; tid++ {
		if m.shared(tid, 13) {
			sharedCount++
		}
	}
	if sharedCount != 2 {
		t.Errorf("13 threads: %d SMT-shared, want 2 (tid 0 and 12)", sharedCount)
	}
	if !m.shared(0, 13) || !m.shared(12, 13) || m.shared(1, 13) {
		t.Error("wrong threads marked shared")
	}
	// No SMT on the P4080: nothing shares.
	mp := New(platform.P4080DS(), computeProfile())
	mp.Fork(8)
	for tid := 0; tid < 8; tid++ {
		if mp.shared(tid, 8) {
			t.Errorf("P4080 tid %d marked shared", tid)
		}
	}
}

func TestResetClearsAccumulation(t *testing.T) {
	b := platform.T4240RDB()
	m := New(b, computeProfile())
	m.Fork(2)
	m.Charge(0, 1e6)
	m.Join()
	if m.Seconds() == 0 || m.Regions() != 1 {
		t.Fatal("nothing accumulated")
	}
	m.Reset()
	if m.Seconds() != 0 || m.Regions() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestDefaultsFromBoard(t *testing.T) {
	b := platform.T4240RDB()
	m := New(b, KernelProfile{Name: "x"})
	if m.Profile().SMTYield != b.SMTYield {
		t.Errorf("SMTYield default = %v, want board %v", m.Profile().SMTYield, b.SMTYield)
	}
	if m.Profile().CyclesPerUnit != 1 {
		t.Errorf("CyclesPerUnit default = %v, want 1", m.Profile().CyclesPerUnit)
	}
}

// TestModelDrivenByRuntime wires the model into the real runtime as its
// Monitor and checks that the virtual clock advances identically whether
// the host executes the region on 1 OS thread or many — the property that
// makes Figure 4 reproducible anywhere.
func TestModelDrivenByRuntime(t *testing.T) {
	b := platform.T4240RDB()
	run := func(threads int) float64 {
		m := New(b, KernelProfile{Name: "k", CyclesPerUnit: 100, SMTYield: 0.5, MemoryIntensity: 0.3})
		rt, err := core.New(
			core.WithLayer(core.NewNativeLayer(b.HWThreads())),
			core.WithNumThreads(threads),
			core.WithMonitor(m),
		)
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()
		for iter := 0; iter < 3; iter++ {
			_ = rt.Parallel(func(c *core.Context) {
				c.ForRange(240_000, core.LoopOpts{Schedule: core.ScheduleStatic}, func(lo, hi int) {
					c.Charge(float64(hi - lo))
				})
			})
		}
		return m.Seconds()
	}
	t1 := run(1)
	t8 := run(8)
	t24 := run(24)
	if !(t1 > t8 && t8 > t24) {
		t.Errorf("virtual times not decreasing: %v %v %v", t1, t8, t24)
	}
	// Determinism across repeated runs.
	if a, b2 := run(8), run(8); math.Abs(a-b2) > 1e-15 {
		t.Errorf("runtime-driven model not deterministic: %v vs %v", a, b2)
	}
}

func TestScalesMultiplyManagementCosts(t *testing.T) {
	b := platform.T4240RDB()
	run := func(s Scales) float64 {
		m := NewScaled(b, computeProfile(), s)
		m.Fork(8)
		for i := 0; i < 10; i++ {
			m.Barrier()
		}
		m.Reduction(8)
		m.Join()
		return m.Seconds()
	}
	base := run(UnitScales())
	doubled := run(Scales{Fork: 2, Sync: 2, Reduction: 2})
	if doubled <= base*1.8 {
		t.Errorf("scaled run %v not ~2x base %v", doubled, base)
	}
	// Zero/negative factors are normalized to 1 (noise guard).
	if got := run(Scales{Fork: -1, Sync: 0, Reduction: 0}); got != base {
		t.Errorf("normalized scales = %v, want %v", got, base)
	}
}

func TestScaleAccessor(t *testing.T) {
	m := NewScaled(platform.T4240RDB(), computeProfile(), Scales{Fork: 1.5, Sync: 1.2, Reduction: 0.9})
	s := m.Scale()
	if s.Fork != 1.5 || s.Sync != 1.2 || s.Reduction != 0.9 {
		t.Errorf("Scale = %+v", s)
	}
	if def := New(platform.T4240RDB(), computeProfile()).Scale(); def != UnitScales() {
		t.Errorf("default scale = %+v", def)
	}
}

func TestUtilizationShowsImbalance(t *testing.T) {
	m := New(platform.T4240RDB(), computeProfile())
	if m.Utilization() != nil {
		t.Error("utilization outside a region should be nil")
	}
	m.Fork(4)
	u0 := m.Utilization()
	if len(u0) != 4 {
		t.Fatalf("utilization len = %d", len(u0))
	}
	m.Charge(0, 1000)
	m.Charge(1, 500)
	m.Charge(2, 1000)
	u := m.Utilization()
	if u[0] != 1 || u[2] != 1 {
		t.Errorf("busiest threads = %v", u)
	}
	if u[1] <= 0.4 || u[1] >= 0.6 {
		t.Errorf("half-loaded thread = %v, want ~0.5", u[1])
	}
	if u[3] != 0 {
		t.Errorf("idle thread = %v", u[3])
	}
	m.Join()
	if m.Utilization() != nil {
		t.Error("utilization after join should be nil")
	}
}
