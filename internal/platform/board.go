// Package platform models the embedded boards the paper targets: the
// Freescale QorIQ T4240RDB (the evaluation platform) and the P4080DS (the
// predecessor used in the paper's §4C comparison). The model covers the
// processor topology — clusters, cores, SMT hardware threads, the cache
// hierarchy and the CoreNet coherency fabric — plus the cost parameters the
// virtual-time performance model consumes, the MRAPI metadata resource
// tree, and the embedded hypervisor partitioning of Figure 2.
package platform

import (
	"fmt"
	"strings"
	"sync"

	"openmpmca/internal/mrapi"
)

// CacheSpec describes one cache level.
type CacheSpec struct {
	// Level is 1, 2 or 3.
	Level int
	// SizeKB is the capacity in KiB (per sharing group).
	SizeKB int
	// LatencyCycles is the load-to-use latency in core cycles.
	LatencyCycles int
	// SharedBy names the sharing scope: "core", "cluster" or "chip".
	SharedBy string
}

func (c CacheSpec) String() string {
	return fmt.Sprintf("L%d %dKB (%s, %d cyc)", c.Level, c.SizeKB, c.SharedBy, c.LatencyCycles)
}

// Board is the static description of a modeled multicore embedded platform.
type Board struct {
	// Name is the product name ("T4240RDB", "P4080DS").
	Name string
	// CoreModel names the PowerPC core ("e6500", "e500mc").
	CoreModel string
	// ISA is the Power ISA compliance level.
	ISA string
	// Cores is the number of physical cores.
	Cores int
	// ThreadsPerCore is the SMT width (e6500: 2, e500mc: 1).
	ThreadsPerCore int
	// CoresPerCluster groups cores into clusters sharing an L2; 0 or 1
	// means cores attach to the fabric directly (P4080 style).
	CoresPerCluster int
	// FreqMHz is the core clock.
	FreqMHz int
	// ProcessNm is the manufacturing process node.
	ProcessNm int
	// Caches lists the hierarchy from L1 down.
	Caches []CacheSpec
	// Fabric names the coherency interconnect.
	Fabric string
	// DDRControllers is the number of memory controllers.
	DDRControllers int
	// MemMB is the installed DRAM.
	MemMB int
	// MemBandwidthGBs is the aggregate DRAM bandwidth in GB/s, consumed by
	// the performance model's memory-contention term.
	MemBandwidthGBs float64
	// SIMD names the vector unit, if any ("AltiVec").
	SIMD string
	// SIMDGflops is the per-core peak of the vector unit.
	SIMDGflops float64
	// Accelerators lists data-path engines on the SoC.
	Accelerators []string
	// Hypervisor reports embedded-hypervisor support (Fig. 2).
	Hypervisor bool

	// SMTYield is the marginal throughput of a core's second hardware
	// thread relative to the first, for compute-bound code. The e6500
	// shares its execution pipes between two threads; one thread does not
	// saturate them, so the second yields roughly half again.
	SMTYield float64
	// BarrierBaseNs and BarrierPerThreadNs parameterize the cost of a
	// full-team synchronization on the board's fabric.
	BarrierBaseNs, BarrierPerThreadNs float64
	// ForkBaseNs and ForkPerThreadNs parameterize team fork+join cost.
	ForkBaseNs, ForkPerThreadNs float64
	// CrossClusterPenalty multiplies synchronization cost when a team
	// spans more than one cluster (traffic crosses CoreNet instead of
	// staying inside a shared L2).
	CrossClusterPenalty float64

	// hotplug state: hardware threads taken offline at runtime. The
	// metadata resource tree exposes this through dynamic "online"
	// attributes, so MRAPI consumers observe hotplug live (§5B4's
	// "available number of processors online").
	hotplugMu sync.Mutex
	offline   map[int]bool
}

// SetOnline brings a hardware thread on- or offline (CPU hotplug). The
// index must be on the board; thread 0 (the boot CPU) cannot go offline,
// as on Linux.
func (b *Board) SetOnline(hwThread int, online bool) error {
	if hwThread < 0 || hwThread >= b.HWThreads() {
		return fmt.Errorf("platform: %s has no cpu%d", b.Name, hwThread)
	}
	if hwThread == 0 && !online {
		return fmt.Errorf("platform: cpu0 cannot go offline")
	}
	b.hotplugMu.Lock()
	defer b.hotplugMu.Unlock()
	if b.offline == nil {
		b.offline = make(map[int]bool)
	}
	if online {
		delete(b.offline, hwThread)
	} else {
		b.offline[hwThread] = true
	}
	return nil
}

// Online reports whether a hardware thread is online.
func (b *Board) Online(hwThread int) bool {
	b.hotplugMu.Lock()
	defer b.hotplugMu.Unlock()
	return !b.offline[hwThread]
}

// OnlineCount reports the number of online hardware threads.
func (b *Board) OnlineCount() int {
	b.hotplugMu.Lock()
	defer b.hotplugMu.Unlock()
	return b.HWThreads() - len(b.offline)
}

// T4240RDB returns the paper's evaluation platform: twelve dual-threaded
// PowerPC e6500 cores at 1.8 GHz in three clusters of four, each cluster
// sharing a multibank 2 MB L2, all clusters joined by the CoreNet fabric
// with a 1.5 MB CoreNet platform (L3) cache (paper §4A, Figure 1).
func T4240RDB() *Board {
	return &Board{
		Name:            "T4240RDB",
		CoreModel:       "e6500",
		ISA:             "Power ISA v2.06",
		Cores:           12,
		ThreadsPerCore:  2,
		CoresPerCluster: 4,
		FreqMHz:         1800,
		ProcessNm:       28,
		Caches: []CacheSpec{
			{Level: 1, SizeKB: 32, LatencyCycles: 3, SharedBy: "core"},
			{Level: 2, SizeKB: 2048, LatencyCycles: 11, SharedBy: "cluster"},
			{Level: 3, SizeKB: 1536, LatencyCycles: 40, SharedBy: "chip"},
		},
		Fabric:          "CoreNet",
		DDRControllers:  3,
		MemMB:           6144,
		MemBandwidthGBs: 38.4, // 3 × DDR3-1866 channels
		SIMD:            "AltiVec",
		SIMDGflops:      16,
		Accelerators:    []string{"DPAA", "SEC 5.0", "PME 2.1", "DCE 1.0", "RMan"},
		Hypervisor:      true,

		SMTYield:            0.55,
		BarrierBaseNs:       900,
		BarrierPerThreadNs:  110,
		ForkBaseNs:          2600,
		ForkPerThreadNs:     260,
		CrossClusterPenalty: 1.35,
	}
}

// P4080DS returns the predecessor platform of the paper's earlier work
// (§4C): eight single-threaded e500mc cores, each with a private 128 KB
// backside L2, attached directly to CoreNet.
func P4080DS() *Board {
	return &Board{
		Name:            "P4080DS",
		CoreModel:       "e500mc",
		ISA:             "Power ISA v2.06",
		Cores:           8,
		ThreadsPerCore:  1,
		CoresPerCluster: 0, // cores attach to the fabric directly
		FreqMHz:         1500,
		ProcessNm:       45,
		Caches: []CacheSpec{
			{Level: 1, SizeKB: 32, LatencyCycles: 3, SharedBy: "core"},
			{Level: 2, SizeKB: 128, LatencyCycles: 9, SharedBy: "core"},
			{Level: 3, SizeKB: 2048, LatencyCycles: 45, SharedBy: "chip"},
		},
		Fabric:          "CoreNet",
		DDRControllers:  2,
		MemMB:           4096,
		MemBandwidthGBs: 17.0,
		SIMD:            "",
		SIMDGflops:      0,
		Accelerators:    []string{"DPAA", "SEC 4.2", "PME"},
		Hypervisor:      true,

		SMTYield:            0, // no SMT
		BarrierBaseNs:       1100,
		BarrierPerThreadNs:  140,
		ForkBaseNs:          3100,
		ForkPerThreadNs:     320,
		CrossClusterPenalty: 1.0, // flat topology: every sync crosses the fabric
	}
}

// HWThreads returns the total number of hardware threads (virtual CPUs).
func (b *Board) HWThreads() int { return b.Cores * b.ThreadsPerCore }

// Clusters returns the number of core clusters (1 for flat topologies).
func (b *Board) Clusters() int {
	if b.CoresPerCluster <= 1 {
		return 1
	}
	return (b.Cores + b.CoresPerCluster - 1) / b.CoresPerCluster
}

// Location resolves a hardware-thread index to its (cluster, core, smt)
// coordinates. Hardware threads are numbered core-major: thread t lives on
// core t/ThreadsPerCore, SMT slot t%ThreadsPerCore — the Linux CPU
// numbering the T4240 kernel exposes.
func (b *Board) Location(hwThread int) (cluster, core, smt int) {
	core = hwThread / b.ThreadsPerCore
	smt = hwThread % b.ThreadsPerCore
	if b.CoresPerCluster > 1 {
		cluster = core / b.CoresPerCluster
	}
	return cluster, core, smt
}

// CyclesPerSecond returns the core clock in Hz.
func (b *Board) CyclesPerSecond() float64 { return float64(b.FreqMHz) * 1e6 }

// ClusterCPUs returns the hardware-thread indices belonging to one
// cluster, in ascending order — the natural partition grain for carving a
// board into hypervisor-isolated runtime domains, since a cluster-aligned
// partition keeps its team's synchronization inside the shared L2. For
// flat topologies cluster 0 covers the whole board.
func (b *Board) ClusterCPUs(cluster int) ([]int, error) {
	if cluster < 0 || cluster >= b.Clusters() {
		return nil, fmt.Errorf("platform: %s has no cluster %d", b.Name, cluster)
	}
	if b.CoresPerCluster <= 1 {
		all := make([]int, b.HWThreads())
		for i := range all {
			all[i] = i
		}
		return all, nil
	}
	var out []int
	for c := cluster * b.CoresPerCluster; c < (cluster+1)*b.CoresPerCluster && c < b.Cores; c++ {
		for s := 0; s < b.ThreadsPerCore; s++ {
			out = append(out, c*b.ThreadsPerCore+s)
		}
	}
	return out, nil
}

// Validate checks the board description for internal consistency.
func (b *Board) Validate() error {
	switch {
	case b.Cores <= 0:
		return fmt.Errorf("platform: %s: no cores", b.Name)
	case b.ThreadsPerCore <= 0:
		return fmt.Errorf("platform: %s: ThreadsPerCore must be >= 1", b.Name)
	case b.FreqMHz <= 0:
		return fmt.Errorf("platform: %s: bad frequency", b.Name)
	case b.CoresPerCluster > 1 && b.Cores%b.CoresPerCluster != 0:
		return fmt.Errorf("platform: %s: %d cores do not fill clusters of %d",
			b.Name, b.Cores, b.CoresPerCluster)
	case b.ThreadsPerCore > 1 && (b.SMTYield <= 0 || b.SMTYield > 1):
		return fmt.Errorf("platform: %s: SMTYield %v out of (0,1]", b.Name, b.SMTYield)
	}
	return nil
}

// ResourceTree builds the MRAPI system metadata tree for the board — the
// structure mrapi_resources_get hands to the runtime (§5B4). Each hardware
// thread carries a dynamic "online" attribute backed by the board's
// online-mask so metadata consumers observe hotplug.
func (b *Board) ResourceTree() *mrapi.Resource {
	root := mrapi.NewResource(b.Name, mrapi.ResSystem)
	root.SetAttr("core_model", b.CoreModel)
	root.SetAttr("isa", b.ISA)
	root.SetAttr("mhz", b.FreqMHz)
	root.SetAttr("process_nm", b.ProcessNm)
	root.SetAttr("mem_mb", b.MemMB)

	fabric := root.AddChild(mrapi.NewResource(b.Fabric, mrapi.ResFabric))
	for _, c := range b.Caches {
		if c.SharedBy == "chip" {
			l3 := mrapi.NewResource(fmt.Sprintf("L%d", c.Level), mrapi.ResCache)
			l3.SetAttr("size_kb", c.SizeKB)
			l3.SetAttr("latency_cycles", c.LatencyCycles)
			fabric.AddChild(l3)
		}
	}
	for d := 0; d < b.DDRControllers; d++ {
		mem := mrapi.NewResource(fmt.Sprintf("DDR%d", d+1), mrapi.ResMemory)
		mem.SetAttr("size_mb", b.MemMB/b.DDRControllers)
		fabric.AddChild(mem)
	}
	for _, acc := range b.Accelerators {
		fabric.AddChild(mrapi.NewResource(acc, mrapi.ResAccelerator))
	}

	addCore := func(parent *mrapi.Resource, coreIdx int) {
		cpu := mrapi.NewResource(fmt.Sprintf("%s-%d", b.CoreModel, coreIdx), mrapi.ResCPU)
		cpu.SetAttr("index", coreIdx)
		cpu.SetAttr("mhz", b.FreqMHz)
		if b.SIMD != "" {
			cpu.SetAttr("simd", b.SIMD)
		}
		for _, c := range b.Caches {
			if c.SharedBy == "core" {
				cache := mrapi.NewResource(fmt.Sprintf("L%d", c.Level), mrapi.ResCache)
				cache.SetAttr("size_kb", c.SizeKB)
				cpu.AddChild(cache)
			}
		}
		for s := 0; s < b.ThreadsPerCore; s++ {
			hwIdx := coreIdx*b.ThreadsPerCore + s
			hw := mrapi.NewResource(fmt.Sprintf("cpu%d", hwIdx), mrapi.ResHWThread)
			hw.SetAttr("index", hwIdx)
			hw.SetDynamicAttr("online", func() any { return b.Online(hwIdx) })
			cpu.AddChild(hw)
		}
		parent.AddChild(cpu)
	}

	if b.CoresPerCluster > 1 {
		for cl := 0; cl < b.Clusters(); cl++ {
			cluster := mrapi.NewResource(fmt.Sprintf("cluster-%d", cl), mrapi.ResCluster)
			for _, c := range b.Caches {
				if c.SharedBy == "cluster" {
					l2 := mrapi.NewResource(fmt.Sprintf("L%d", c.Level), mrapi.ResCache)
					l2.SetAttr("size_kb", c.SizeKB)
					l2.SetAttr("banks", b.CoresPerCluster)
					cluster.AddChild(l2)
				}
			}
			for c := 0; c < b.CoresPerCluster; c++ {
				addCore(cluster, cl*b.CoresPerCluster+c)
			}
			fabric.AddChild(cluster)
		}
	} else {
		for c := 0; c < b.Cores; c++ {
			addCore(fabric, c)
		}
	}
	return root
}

// NewSystem builds a fresh MRAPI universe whose metadata is this board's
// resource tree — the standard way the MCA thread layer binds to a board.
func (b *Board) NewSystem() *mrapi.System {
	return mrapi.NewSystem(b.ResourceTree())
}

// BlockDiagram renders an ASCII rendition of the paper's Figure 1: the
// cluster/core/cache structure around the coherency fabric.
func (b *Board) BlockDiagram() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %d× %s @ %.1f GHz (%d hardware threads, %dnm)\n",
		b.Name, b.Cores, b.CoreModel, float64(b.FreqMHz)/1000, b.HWThreads(), b.ProcessNm)
	sb.WriteString(strings.Repeat("=", 64) + "\n")
	if b.CoresPerCluster > 1 {
		for cl := 0; cl < b.Clusters(); cl++ {
			fmt.Fprintf(&sb, "+-- cluster %d ", cl)
			sb.WriteString(strings.Repeat("-", 40) + "\n")
			for c := 0; c < b.CoresPerCluster; c++ {
				core := cl*b.CoresPerCluster + c
				fmt.Fprintf(&sb, "|   %s[%2d]  smt:", b.CoreModel, core)
				for s := 0; s < b.ThreadsPerCore; s++ {
					fmt.Fprintf(&sb, " cpu%-2d", core*b.ThreadsPerCore+s)
				}
				for _, cs := range b.Caches {
					if cs.SharedBy == "core" {
						fmt.Fprintf(&sb, "  %s", cs)
					}
				}
				sb.WriteString("\n")
			}
			for _, cs := range b.Caches {
				if cs.SharedBy == "cluster" {
					fmt.Fprintf(&sb, "|   shared %s\n", cs)
				}
			}
			sb.WriteString("+" + strings.Repeat("-", 52) + "\n")
		}
	} else {
		for c := 0; c < b.Cores; c++ {
			fmt.Fprintf(&sb, "| %s[%d]", b.CoreModel, c)
			for _, cs := range b.Caches {
				if cs.SharedBy == "core" {
					fmt.Fprintf(&sb, "  %s", cs)
				}
			}
			sb.WriteString("\n")
		}
	}
	fmt.Fprintf(&sb, "=== %s coherency fabric ===\n", b.Fabric)
	for _, cs := range b.Caches {
		if cs.SharedBy == "chip" {
			fmt.Fprintf(&sb, "  platform cache: %s\n", cs)
		}
	}
	fmt.Fprintf(&sb, "  memory: %d× DDR controller, %d MB total, %.1f GB/s\n",
		b.DDRControllers, b.MemMB, b.MemBandwidthGBs)
	if len(b.Accelerators) > 0 {
		fmt.Fprintf(&sb, "  accelerators: %s\n", strings.Join(b.Accelerators, ", "))
	}
	return sb.String()
}

// Compare renders the §4C side-by-side comparison of two boards.
func Compare(a, b *Board) string {
	row := func(label string, va, vb any) string {
		return fmt.Sprintf("%-22s %-22v %-22v\n", label, va, vb)
	}
	var sb strings.Builder
	sb.WriteString(row("", a.Name, b.Name))
	sb.WriteString(strings.Repeat("-", 66) + "\n")
	sb.WriteString(row("core", a.CoreModel, b.CoreModel))
	sb.WriteString(row("cores", a.Cores, b.Cores))
	sb.WriteString(row("threads/core", a.ThreadsPerCore, b.ThreadsPerCore))
	sb.WriteString(row("hw threads", a.HWThreads(), b.HWThreads()))
	sb.WriteString(row("clock (MHz)", a.FreqMHz, b.FreqMHz))
	sb.WriteString(row("clusters", a.Clusters(), b.Clusters()))
	for i := 0; i < len(a.Caches) && i < len(b.Caches); i++ {
		sb.WriteString(row(fmt.Sprintf("L%d", a.Caches[i].Level), a.Caches[i], b.Caches[i]))
	}
	sb.WriteString(row("fabric", a.Fabric, b.Fabric))
	sb.WriteString(row("process (nm)", a.ProcessNm, b.ProcessNm))
	return sb.String()
}
