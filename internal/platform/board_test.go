package platform

import (
	"strings"
	"testing"

	"openmpmca/internal/mrapi"
)

func TestT4240Shape(t *testing.T) {
	b := T4240RDB()
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.Cores != 12 || b.ThreadsPerCore != 2 {
		t.Errorf("cores/threads = %d/%d, want 12/2", b.Cores, b.ThreadsPerCore)
	}
	if b.HWThreads() != 24 {
		t.Errorf("HWThreads = %d, want 24", b.HWThreads())
	}
	if b.Clusters() != 3 {
		t.Errorf("Clusters = %d, want 3", b.Clusters())
	}
	if b.FreqMHz != 1800 {
		t.Errorf("FreqMHz = %d, want 1800", b.FreqMHz)
	}
}

func TestP4080Shape(t *testing.T) {
	b := P4080DS()
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.HWThreads() != 8 {
		t.Errorf("HWThreads = %d, want 8", b.HWThreads())
	}
	if b.Clusters() != 1 {
		t.Errorf("Clusters = %d, want 1 (flat)", b.Clusters())
	}
	// §4C: both boards have 32KB L1; P4080's L2 is 128KB per core.
	if b.Caches[0].SizeKB != 32 || b.Caches[1].SizeKB != 128 {
		t.Errorf("caches = %v", b.Caches)
	}
	if b.Caches[1].SharedBy != "core" {
		t.Errorf("P4080 L2 should be private per core")
	}
}

func TestLocationMapping(t *testing.T) {
	b := T4240RDB()
	cases := []struct {
		hw, cluster, core, smt int
	}{
		{0, 0, 0, 0},
		{1, 0, 0, 1},
		{7, 0, 3, 1},
		{8, 1, 4, 0},
		{16, 2, 8, 0},
		{23, 2, 11, 1},
	}
	for _, c := range cases {
		cl, co, s := b.Location(c.hw)
		if cl != c.cluster || co != c.core || s != c.smt {
			t.Errorf("Location(%d) = (%d,%d,%d), want (%d,%d,%d)",
				c.hw, cl, co, s, c.cluster, c.core, c.smt)
		}
	}
}

func TestValidateCatchesBadBoards(t *testing.T) {
	bad := T4240RDB()
	bad.Cores = 10 // not divisible into clusters of 4
	if err := bad.Validate(); err == nil {
		t.Error("expected cluster mismatch error")
	}
	bad2 := T4240RDB()
	bad2.SMTYield = 1.5
	if err := bad2.Validate(); err == nil {
		t.Error("expected SMTYield range error")
	}
	bad3 := T4240RDB()
	bad3.Cores = 0
	if err := bad3.Validate(); err == nil {
		t.Error("expected no-cores error")
	}
}

func TestResourceTreeCounts(t *testing.T) {
	b := T4240RDB()
	root := b.ResourceTree()
	if got := root.Count(mrapi.ResCPU); got != 12 {
		t.Errorf("CPU resources = %d, want 12", got)
	}
	if got := root.Count(mrapi.ResHWThread); got != 24 {
		t.Errorf("hwthread resources = %d, want 24", got)
	}
	if got := root.Count(mrapi.ResCluster); got != 3 {
		t.Errorf("cluster resources = %d, want 3", got)
	}
	if got := root.Count(mrapi.ResMemory); got != 3 {
		t.Errorf("memory resources = %d, want 3", got)
	}
	if got := root.Count(mrapi.ResFabric); got != 1 {
		t.Errorf("fabric resources = %d, want 1", got)
	}
	// L1 per core + L2 per cluster + L3 on fabric = 12 + 3 + 1.
	if got := root.Count(mrapi.ResCache); got != 16 {
		t.Errorf("cache resources = %d, want 16", got)
	}
}

func TestResourceTreeFeedsMRAPIMetadata(t *testing.T) {
	b := T4240RDB()
	sys := b.NewSystem()
	n, err := sys.Initialize(1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.ProcessorsOnline(); got != 24 {
		t.Errorf("ProcessorsOnline = %d, want 24", got)
	}
}

func TestP4080TreeIsFlat(t *testing.T) {
	root := P4080DS().ResourceTree()
	if got := root.Count(mrapi.ResCluster); got != 0 {
		t.Errorf("P4080 cluster resources = %d, want 0", got)
	}
	if got := root.Count(mrapi.ResCPU); got != 8 {
		t.Errorf("CPU resources = %d, want 8", got)
	}
}

func TestBlockDiagram(t *testing.T) {
	out := T4240RDB().BlockDiagram()
	for _, want := range []string{"T4240RDB", "cluster 0", "cluster 2", "CoreNet", "cpu23", "DDR"} {
		if !strings.Contains(out, want) {
			t.Errorf("diagram missing %q:\n%s", want, out)
		}
	}
	flat := P4080DS().BlockDiagram()
	if strings.Contains(flat, "cluster") {
		t.Error("P4080 diagram should not show clusters")
	}
}

func TestCompareTable(t *testing.T) {
	out := Compare(T4240RDB(), P4080DS())
	for _, want := range []string{"T4240RDB", "P4080DS", "e6500", "e500mc", "threads/core"} {
		if !strings.Contains(out, want) {
			t.Errorf("compare missing %q", want)
		}
	}
}
