package platform

import "testing"

func TestClusterCPUsT4240(t *testing.T) {
	b := T4240RDB()
	seen := make(map[int]bool)
	for cl := 0; cl < b.Clusters(); cl++ {
		cpus, err := b.ClusterCPUs(cl)
		if err != nil {
			t.Fatalf("cluster %d: %v", cl, err)
		}
		if len(cpus) != b.CoresPerCluster*b.ThreadsPerCore {
			t.Errorf("cluster %d has %d hw threads, want %d", cl, len(cpus), b.CoresPerCluster*b.ThreadsPerCore)
		}
		for _, c := range cpus {
			if seen[c] {
				t.Errorf("cpu%d appears in two clusters", c)
			}
			seen[c] = true
			if gotCl, _, _ := b.Location(c); gotCl != cl {
				t.Errorf("cpu%d: ClusterCPUs says cluster %d, Location says %d", c, cl, gotCl)
			}
		}
	}
	if len(seen) != b.HWThreads() {
		t.Errorf("clusters cover %d hw threads, want %d", len(seen), b.HWThreads())
	}
	if _, err := b.ClusterCPUs(b.Clusters()); err == nil {
		t.Error("out-of-range cluster accepted")
	}
}

func TestClusterCPUsFlat(t *testing.T) {
	b := P4080DS()
	cpus, err := b.ClusterCPUs(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cpus) != b.HWThreads() {
		t.Errorf("flat topology cluster 0 has %d cpus, want all %d", len(cpus), b.HWThreads())
	}
	if _, err := b.ClusterCPUs(1); err == nil {
		t.Error("flat topology should only have cluster 0")
	}
}
