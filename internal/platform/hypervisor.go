package platform

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// GuestOS names the kind of software image a hypervisor partition boots
// (the paper's Figure 2 shows Linux, RTOS and bare-metal guests side by
// side on one T4240).
type GuestOS string

// Guest operating-system kinds.
const (
	GuestLinux     GuestOS = "Embedded Linux"
	GuestRTOS      GuestOS = "RTOS"
	GuestBareMetal GuestOS = "Bare-Metal"
)

// PartitionState is a partition's lifecycle phase.
type PartitionState int

const (
	// PartitionStopped means defined but not running.
	PartitionStopped PartitionState = iota
	// PartitionRunning means the guest has been started.
	PartitionRunning
)

func (s PartitionState) String() string {
	if s == PartitionRunning {
		return "running"
	}
	return "stopped"
}

// Errors returned by the hypervisor.
var (
	ErrCPUConflict     = errors.New("hypervisor: CPU already assigned to another partition")
	ErrCPUOutOfRange   = errors.New("hypervisor: CPU index outside the board")
	ErrMemExhausted    = errors.New("hypervisor: not enough unassigned memory")
	ErrPartitionExists = errors.New("hypervisor: partition name already in use")
	ErrNoPartition     = errors.New("hypervisor: no such partition")
	ErrPartitionBusy   = errors.New("hypervisor: partition is running")
	ErrNoCPUs          = errors.New("hypervisor: partition needs at least one CPU")
	ErrNotSupported    = errors.New("hypervisor: board has no embedded hypervisor")
)

// Partition is one secure partition of the multicore system: an exclusive
// set of hardware threads, a memory share, and a guest image.
type Partition struct {
	Name   string
	Guest  GuestOS
	CPUs   []int // hardware-thread indices, exclusive
	MemMB  int
	state  PartitionState
	IOmask []string // pass-through I/O devices
}

// State reports the partition's lifecycle phase.
func (p *Partition) State() PartitionState { return p.state }

// Hypervisor models the Freescale embedded hypervisor: a thin layer that
// partitions a board's CPUs, memory and I/O so different guests run side
// by side (paper §4A, Figure 2).
type Hypervisor struct {
	board *Board

	mu         sync.Mutex
	partitions map[string]*Partition
	cpuOwner   map[int]string
	memFreeMB  int
}

// NewHypervisor installs the hypervisor on a board. Boards without
// hypervisor support reject installation.
func NewHypervisor(b *Board) (*Hypervisor, error) {
	if !b.Hypervisor {
		return nil, ErrNotSupported
	}
	return &Hypervisor{
		board:      b,
		partitions: make(map[string]*Partition),
		cpuOwner:   make(map[int]string),
		memFreeMB:  b.MemMB,
	}, nil
}

// Board returns the underlying board.
func (h *Hypervisor) Board() *Board { return h.board }

// FreeMemMB reports unassigned memory.
func (h *Hypervisor) FreeMemMB() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.memFreeMB
}

// FreeCPUs returns the hardware threads not owned by any partition, sorted.
func (h *Hypervisor) FreeCPUs() []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []int
	for cpu := 0; cpu < h.board.HWThreads(); cpu++ {
		if _, taken := h.cpuOwner[cpu]; !taken {
			out = append(out, cpu)
		}
	}
	return out
}

// CreatePartition defines a partition with exclusive ownership of the given
// hardware threads and memMB of memory. CPU and memory assignments are
// checked for conflicts; partial failures leave the hypervisor unchanged.
func (h *Hypervisor) CreatePartition(name string, guest GuestOS, cpus []int, memMB int, ioDevices ...string) (*Partition, error) {
	if len(cpus) == 0 {
		return nil, ErrNoCPUs
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.partitions[name]; dup {
		return nil, ErrPartitionExists
	}
	if memMB > h.memFreeMB {
		return nil, ErrMemExhausted
	}
	seen := make(map[int]bool, len(cpus))
	for _, c := range cpus {
		if c < 0 || c >= h.board.HWThreads() {
			return nil, fmt.Errorf("%w: cpu%d on %s", ErrCPUOutOfRange, c, h.board.Name)
		}
		if owner, taken := h.cpuOwner[c]; taken {
			return nil, fmt.Errorf("%w: cpu%d owned by %q", ErrCPUConflict, c, owner)
		}
		if seen[c] {
			return nil, fmt.Errorf("%w: cpu%d listed twice", ErrCPUConflict, c)
		}
		seen[c] = true
	}
	p := &Partition{
		Name:   name,
		Guest:  guest,
		CPUs:   append([]int(nil), cpus...),
		MemMB:  memMB,
		IOmask: append([]string(nil), ioDevices...),
	}
	sort.Ints(p.CPUs)
	for _, c := range p.CPUs {
		h.cpuOwner[c] = name
	}
	h.memFreeMB -= memMB
	h.partitions[name] = p
	return p, nil
}

// Start boots the partition's guest.
func (h *Hypervisor) Start(name string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.partitions[name]
	if !ok {
		return ErrNoPartition
	}
	p.state = PartitionRunning
	return nil
}

// Stop halts a running partition's guest.
func (h *Hypervisor) Stop(name string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.partitions[name]
	if !ok {
		return ErrNoPartition
	}
	p.state = PartitionStopped
	return nil
}

// DestroyPartition removes a stopped partition and returns its resources.
func (h *Hypervisor) DestroyPartition(name string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.partitions[name]
	if !ok {
		return ErrNoPartition
	}
	if p.state == PartitionRunning {
		return ErrPartitionBusy
	}
	for _, c := range p.CPUs {
		delete(h.cpuOwner, c)
	}
	h.memFreeMB += p.MemMB
	delete(h.partitions, name)
	return nil
}

// Partition looks up a partition by name.
func (h *Hypervisor) Partition(name string) (*Partition, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.partitions[name]
	if !ok {
		return nil, ErrNoPartition
	}
	return p, nil
}

// Partitions returns all partitions sorted by name.
func (h *Hypervisor) Partitions() []*Partition {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]*Partition, 0, len(h.partitions))
	for _, p := range h.partitions {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Render draws the partition map — the reproduction of the paper's
// Figure 2.
func (h *Hypervisor) Render() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	var sb strings.Builder
	fmt.Fprintf(&sb, "Freescale Embedded Hypervisor on %s\n", h.board.Name)
	sb.WriteString(strings.Repeat("=", 60) + "\n")
	names := make([]string, 0, len(h.partitions))
	for n := range h.partitions {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p := h.partitions[n]
		cpus := make([]string, len(p.CPUs))
		for i, c := range p.CPUs {
			cpus[i] = fmt.Sprintf("cpu%d", c)
		}
		fmt.Fprintf(&sb, "| partition %-12s guest=%-15s %-8s\n", p.Name, p.Guest, p.state)
		fmt.Fprintf(&sb, "|   cpus: %s\n", strings.Join(cpus, " "))
		fmt.Fprintf(&sb, "|   mem:  %d MB", p.MemMB)
		if len(p.IOmask) > 0 {
			fmt.Fprintf(&sb, "   io: %s", strings.Join(p.IOmask, ","))
		}
		sb.WriteString("\n" + strings.Repeat("-", 60) + "\n")
	}
	free := 0
	for cpu := 0; cpu < h.board.HWThreads(); cpu++ {
		if _, taken := h.cpuOwner[cpu]; !taken {
			free++
		}
	}
	fmt.Fprintf(&sb, "unassigned: %d cpus, %d MB\n", free, h.memFreeMB)
	sb.WriteString("--- hypervisor: CPU/memory/I-O partitioning, guest isolation ---\n")
	fmt.Fprintf(&sb, "--- hardware: %d× %s, %s fabric ---\n", h.board.Cores, h.board.CoreModel, h.board.Fabric)
	return sb.String()
}
