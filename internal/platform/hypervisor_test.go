package platform

import (
	"errors"
	"strings"
	"testing"
)

func newHV(t *testing.T) *Hypervisor {
	t.Helper()
	h, err := NewHypervisor(T4240RDB())
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHypervisorPartitionLifecycle(t *testing.T) {
	h := newHV(t)
	p, err := h.CreatePartition("ctrl", GuestLinux, []int{0, 1, 2, 3}, 2048, "eth0")
	if err != nil {
		t.Fatal(err)
	}
	if p.State() != PartitionStopped {
		t.Errorf("state = %v, want stopped", p.State())
	}
	if err := h.Start("ctrl"); err != nil {
		t.Fatal(err)
	}
	if p.State() != PartitionRunning {
		t.Errorf("state = %v, want running", p.State())
	}
	if err := h.DestroyPartition("ctrl"); !errors.Is(err, ErrPartitionBusy) {
		t.Errorf("destroy running = %v, want ErrPartitionBusy", err)
	}
	if err := h.Stop("ctrl"); err != nil {
		t.Fatal(err)
	}
	if err := h.DestroyPartition("ctrl"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Partition("ctrl"); !errors.Is(err, ErrNoPartition) {
		t.Errorf("lookup destroyed = %v, want ErrNoPartition", err)
	}
	if got := len(h.FreeCPUs()); got != 24 {
		t.Errorf("FreeCPUs after destroy = %d, want 24", got)
	}
	if h.FreeMemMB() != 6144 {
		t.Errorf("FreeMemMB after destroy = %d, want 6144", h.FreeMemMB())
	}
}

func TestHypervisorCPUExclusivity(t *testing.T) {
	h := newHV(t)
	if _, err := h.CreatePartition("a", GuestLinux, []int{0, 1}, 512); err != nil {
		t.Fatal(err)
	}
	if _, err := h.CreatePartition("b", GuestRTOS, []int{1, 2}, 512); !errors.Is(err, ErrCPUConflict) {
		t.Errorf("overlapping cpus = %v, want ErrCPUConflict", err)
	}
	if _, err := h.CreatePartition("c", GuestRTOS, []int{5, 5}, 512); !errors.Is(err, ErrCPUConflict) {
		t.Errorf("duplicate cpu in list = %v, want ErrCPUConflict", err)
	}
	if _, err := h.CreatePartition("d", GuestRTOS, []int{24}, 512); !errors.Is(err, ErrCPUOutOfRange) {
		t.Errorf("cpu out of range = %v, want ErrCPUOutOfRange", err)
	}
	if _, err := h.CreatePartition("e", GuestRTOS, nil, 512); !errors.Is(err, ErrNoCPUs) {
		t.Errorf("no cpus = %v, want ErrNoCPUs", err)
	}
}

func TestHypervisorMemoryAccounting(t *testing.T) {
	h := newHV(t)
	if _, err := h.CreatePartition("big", GuestLinux, []int{0}, 6000); err != nil {
		t.Fatal(err)
	}
	if _, err := h.CreatePartition("more", GuestRTOS, []int{1}, 200); !errors.Is(err, ErrMemExhausted) {
		t.Errorf("over-commit = %v, want ErrMemExhausted", err)
	}
	if h.FreeMemMB() != 144 {
		t.Errorf("FreeMemMB = %d, want 144", h.FreeMemMB())
	}
}

func TestHypervisorDuplicateName(t *testing.T) {
	h := newHV(t)
	if _, err := h.CreatePartition("x", GuestLinux, []int{0}, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := h.CreatePartition("x", GuestRTOS, []int{1}, 10); !errors.Is(err, ErrPartitionExists) {
		t.Errorf("duplicate name = %v, want ErrPartitionExists", err)
	}
}

func TestHypervisorRequiresSupport(t *testing.T) {
	b := T4240RDB()
	b.Hypervisor = false
	if _, err := NewHypervisor(b); !errors.Is(err, ErrNotSupported) {
		t.Errorf("unsupported board = %v, want ErrNotSupported", err)
	}
}

func TestHypervisorFailedCreateLeavesStateClean(t *testing.T) {
	h := newHV(t)
	// cpu 30 is invalid; cpu 0 must remain free afterwards.
	if _, err := h.CreatePartition("bad", GuestLinux, []int{0, 30}, 512); err == nil {
		t.Fatal("expected failure")
	}
	if got := len(h.FreeCPUs()); got != 24 {
		t.Errorf("FreeCPUs = %d, want 24 (no partial assignment)", got)
	}
	if h.FreeMemMB() != 6144 {
		t.Errorf("FreeMemMB = %d, want 6144", h.FreeMemMB())
	}
}

func TestHypervisorRenderFigure2(t *testing.T) {
	h := newHV(t)
	_, _ = h.CreatePartition("dataplane", GuestBareMetal, []int{8, 9, 10, 11}, 1024, "dpaa0")
	_, _ = h.CreatePartition("control", GuestLinux, []int{0, 1, 2, 3}, 2048)
	_ = h.Start("control")
	out := h.Render()
	for _, want := range []string{"Embedded Hypervisor", "control", "dataplane", "Bare-Metal", "running", "stopped", "unassigned: 16 cpus"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	// Partitions render sorted by name: control before dataplane.
	if strings.Index(out, "control") > strings.Index(out, "dataplane") {
		t.Error("partitions not sorted by name")
	}
}

func TestPartitionsSorted(t *testing.T) {
	h := newHV(t)
	_, _ = h.CreatePartition("zeta", GuestLinux, []int{0}, 10)
	_, _ = h.CreatePartition("alpha", GuestLinux, []int{1}, 10)
	ps := h.Partitions()
	if len(ps) != 2 || ps[0].Name != "alpha" || ps[1].Name != "zeta" {
		t.Errorf("Partitions() order wrong: %v", ps)
	}
}
