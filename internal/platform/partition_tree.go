package platform

import (
	"fmt"
	"sort"

	"openmpmca/internal/mrapi"
)

// PartitionResourceTree builds the MRAPI metadata tree a guest running
// inside the named partition would observe: only the partition's hardware
// threads (and the cores/clusters containing them), its memory share, and
// its pass-through I/O devices. This is how an OpenMP runtime deployed in
// one hypervisor partition sizes itself to the partition instead of the
// whole board (§4A's partitioning put to work).
func (h *Hypervisor) PartitionResourceTree(name string) (*mrapi.Resource, error) {
	p, err := h.Partition(name)
	if err != nil {
		return nil, err
	}
	b := h.board

	owned := make(map[int]bool, len(p.CPUs))
	for _, c := range p.CPUs {
		owned[c] = true
	}

	root := mrapi.NewResource(fmt.Sprintf("%s/%s", b.Name, p.Name), mrapi.ResSystem)
	root.SetAttr("guest", string(p.Guest))
	root.SetAttr("mhz", b.FreqMHz)
	root.SetAttr("mem_mb", p.MemMB)

	fabric := root.AddChild(mrapi.NewResource(b.Fabric, mrapi.ResFabric))
	mem := mrapi.NewResource("DDR-share", mrapi.ResMemory)
	mem.SetAttr("size_mb", p.MemMB)
	fabric.AddChild(mem)
	for _, dev := range p.IOmask {
		fabric.AddChild(mrapi.NewResource(dev, mrapi.ResAccelerator))
	}

	// Group the owned hardware threads by core, cores by cluster.
	coreThreads := make(map[int][]int)
	for _, hw := range p.CPUs {
		_, core, _ := b.Location(hw)
		coreThreads[core] = append(coreThreads[core], hw)
	}
	cores := make([]int, 0, len(coreThreads))
	for c := range coreThreads {
		cores = append(cores, c)
	}
	sort.Ints(cores)

	clusters := make(map[int]*mrapi.Resource)
	parentFor := func(coreIdx int) *mrapi.Resource {
		if b.CoresPerCluster <= 1 {
			return fabric
		}
		cl := coreIdx / b.CoresPerCluster
		node, ok := clusters[cl]
		if !ok {
			node = mrapi.NewResource(fmt.Sprintf("cluster-%d", cl), mrapi.ResCluster)
			clusters[cl] = node
			fabric.AddChild(node)
		}
		return node
	}

	for _, coreIdx := range cores {
		cpu := mrapi.NewResource(fmt.Sprintf("%s-%d", b.CoreModel, coreIdx), mrapi.ResCPU)
		cpu.SetAttr("index", coreIdx)
		cpu.SetAttr("mhz", b.FreqMHz)
		hws := coreThreads[coreIdx]
		sort.Ints(hws)
		for _, hw := range hws {
			hwIdx := hw
			res := mrapi.NewResource(fmt.Sprintf("cpu%d", hwIdx), mrapi.ResHWThread)
			res.SetAttr("index", hwIdx)
			res.SetDynamicAttr("online", func() any { return b.Online(hwIdx) })
			cpu.AddChild(res)
		}
		parentFor(coreIdx).AddChild(cpu)
	}
	return root, nil
}

// PartitionSystem builds an MRAPI universe scoped to the partition —
// the universe a guest OS's MCA-backed OpenMP runtime binds to.
func (h *Hypervisor) PartitionSystem(name string) (*mrapi.System, error) {
	tree, err := h.PartitionResourceTree(name)
	if err != nil {
		return nil, err
	}
	return mrapi.NewSystem(tree), nil
}
