package platform

import (
	"errors"
	"testing"

	"openmpmca/internal/mrapi"
)

func TestHotplug(t *testing.T) {
	b := T4240RDB()
	if b.OnlineCount() != 24 {
		t.Fatalf("OnlineCount = %d", b.OnlineCount())
	}
	if err := b.SetOnline(23, false); err != nil {
		t.Fatal(err)
	}
	if b.Online(23) || b.OnlineCount() != 23 {
		t.Errorf("cpu23 still online")
	}
	if err := b.SetOnline(0, false); err == nil {
		t.Error("boot CPU went offline")
	}
	if err := b.SetOnline(99, false); err == nil {
		t.Error("nonexistent CPU accepted")
	}
	if err := b.SetOnline(23, true); err != nil {
		t.Fatal(err)
	}
	if b.OnlineCount() != 24 {
		t.Errorf("OnlineCount after replug = %d", b.OnlineCount())
	}
}

func TestHotplugVisibleThroughMetadata(t *testing.T) {
	// §5B4: the runtime reads the online processor count from the MRAPI
	// metadata tree; hotplug must be visible live, without rebuilding.
	b := T4240RDB()
	sys := b.NewSystem()
	n, err := sys.Initialize(1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.ProcessorsOnline(); got != 24 {
		t.Fatalf("ProcessorsOnline = %d", got)
	}
	for _, cpu := range []int{20, 21, 22, 23} {
		if err := b.SetOnline(cpu, false); err != nil {
			t.Fatal(err)
		}
	}
	if got := n.ProcessorsOnline(); got != 20 {
		t.Errorf("ProcessorsOnline after hotplug = %d, want 20", got)
	}
}

func TestPartitionResourceTree(t *testing.T) {
	h := newHV(t)
	// cpus 8..11 live on cores 4,5 in cluster 1.
	if _, err := h.CreatePartition("data", GuestBareMetal, []int{8, 9, 10, 11}, 1024, "dpaa0"); err != nil {
		t.Fatal(err)
	}
	tree, err := h.PartitionResourceTree("data")
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Count(mrapi.ResHWThread); got != 4 {
		t.Errorf("partition hwthreads = %d, want 4", got)
	}
	if got := tree.Count(mrapi.ResCPU); got != 2 {
		t.Errorf("partition cores = %d, want 2 (cores 4 and 5)", got)
	}
	if got := tree.Count(mrapi.ResCluster); got != 1 {
		t.Errorf("partition clusters = %d, want 1", got)
	}
	if got := tree.Count(mrapi.ResAccelerator); got != 1 {
		t.Errorf("pass-through devices = %d, want 1", got)
	}
	if v, ok := tree.Attr("mem_mb"); !ok || v.(int) != 1024 {
		t.Errorf("mem_mb = %v", v)
	}
	if _, err := h.PartitionResourceTree("ghost"); !errors.Is(err, ErrNoPartition) {
		t.Errorf("unknown partition = %v", err)
	}
}

func TestPartitionSystemScopesProcessorCount(t *testing.T) {
	h := newHV(t)
	if _, err := h.CreatePartition("rt", GuestRTOS, []int{16, 17, 18, 19, 20, 21}, 512); err != nil {
		t.Fatal(err)
	}
	sys, err := h.PartitionSystem("rt")
	if err != nil {
		t.Fatal(err)
	}
	n, err := sys.Initialize(1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.ProcessorsOnline(); got != 6 {
		t.Errorf("partition ProcessorsOnline = %d, want 6", got)
	}
}

func TestPartitionTreeSpanningClusters(t *testing.T) {
	h := newHV(t)
	// cpus 0 and 23 sit in clusters 0 and 2.
	if _, err := h.CreatePartition("span", GuestLinux, []int{0, 23}, 256); err != nil {
		t.Fatal(err)
	}
	tree, err := h.PartitionResourceTree("span")
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Count(mrapi.ResCluster); got != 2 {
		t.Errorf("clusters = %d, want 2", got)
	}
	if got := tree.Count(mrapi.ResCPU); got != 2 {
		t.Errorf("cores = %d, want 2", got)
	}
}

func TestP4080PartitionTreeFlat(t *testing.T) {
	h, err := NewHypervisor(P4080DS())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.CreatePartition("p", GuestLinux, []int{0, 1, 2}, 128); err != nil {
		t.Fatal(err)
	}
	tree, err := h.PartitionResourceTree("p")
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Count(mrapi.ResCluster); got != 0 {
		t.Errorf("flat board partition has %d clusters", got)
	}
	if got := tree.Count(mrapi.ResCPU); got != 3 {
		t.Errorf("cores = %d, want 3", got)
	}
}
