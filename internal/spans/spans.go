// Package spans folds the runtime's flat trace events into lifetime
// spans — one record per offloaded chunk, fabric task or parallel
// region, from first dispatch to settled result — the way a tracing
// backend folds raw log lines into spans. Where internal/trace answers
// "what happened, in order", spans answers "how long did each unit of
// work live, where did it run, and was it retried or recovered".
//
// The Exporter implements core.Monitor (fork/join become region spans;
// the other callbacks are ignored), offload.EventSink
// (OffloadSend/OffloadRecv become chunk spans) and taskfabric.EventSink
// (TaskSend/TaskRecv become task spans; steals are counted) — all
// structurally, so the package imports only internal/core and can be
// wired everywhere without cycles. Completed spans land in a bounded
// ring, mirroring trace.Recorder's retention contract: aggregate
// counters cover the whole run, the ring keeps the most recent spans.
//
// The job service serves the exporter's state at GET /v1/spans
// (jobservice.WithSpans), and the chaos runner uses it to check that a
// campaign's fault schedule actually produced retries and recoveries.
package spans

import (
	"encoding/json"
	"sync"
	"time"

	"openmpmca/internal/core"
)

// Kind says what unit of work a span covers.
type Kind string

// Span kinds.
const (
	KindChunk  Kind = "chunk"  // one offload chunk (offload.EventSink)
	KindTask   Kind = "task"   // one fabric task (taskfabric.EventSink)
	KindRegion Kind = "region" // one fork/join parallel region (core.Monitor)
)

// Span is one folded work lifetime. A span opens on the first dispatch
// event for its id (submit→send collapse into the first send the sinks
// observe) and completes on the matching result event; region spans
// open on fork and complete on join.
type Span struct {
	ID   uint64 `json:"id"` // chunk/task id; region ordinal for regions
	Kind Kind   `json:"kind"`
	// Domain is the executor that delivered the result: a worker domain
	// id, or -1 for the host (local execution, or a region). Zero until
	// the span completes.
	Domain int `json:"domain"`
	// N is the team size for region spans; 0 otherwise.
	N       int   `json:"n,omitempty"`
	StartNs int64 `json:"start_ns"`          // unix nanos of the opening event
	EndNs   int64 `json:"end_ns,omitempty"`  // unix nanos of completion; 0 while open
	DurNs   int64 `json:"dur_ns,omitempty"`  // EndNs - StartNs
	Sends   int   `json:"sends,omitempty"`   // dispatch attempts observed
	Retried bool  `json:"retried,omitempty"` // >1 send: deadline expiry or loss re-dispatch
	// Recovered marks a chunk/task that was dispatched to a worker
	// domain and later re-dispatched to the host — the signature of
	// domain-loss recovery or retry-exhaustion fallback.
	Recovered bool `json:"recovered,omitempty"`
	// Domains lists every executor the work was dispatched to, in
	// order, when there was more than one.
	Domains []int `json:"domains,omitempty"`
}

// Stats aggregates an exporter's whole run, independent of ring wrap.
type Stats struct {
	Opened    uint64 `json:"opened"`    // spans started
	Completed uint64 `json:"completed"` // spans settled
	Dropped   uint64 `json:"dropped"`   // completed spans evicted by the ring bound
	Retries   uint64 `json:"retries"`   // extra dispatch attempts across all spans
	Recovered uint64 `json:"recovered"` // spans re-executed on the host after a remote send
	Steals    uint64 `json:"steals"`    // task migrations, brokered and direct (not attributable to one span)
	// PeerSteals counts the subset of Steals that moved domain-to-domain
	// over the mesh without the host relaying the task frame.
	PeerSteals uint64 `json:"peer_steals,omitempty"`
}

// View is the JSON shape of an exporter snapshot: the retained
// completed spans (oldest first), the still-open spans, and the
// whole-run aggregates. GET /v1/spans serves exactly this.
type View struct {
	Spans []Span `json:"spans"`
	Open  []Span `json:"open,omitempty"`
	Stats Stats  `json:"stats"`
}

// DefaultCapacity bounds an exporter's ring when 0 is requested.
const DefaultCapacity = 2048

// Exporter folds events into spans. Create one with NewExporter; wire
// it via core.WithMonitor / offload.WithEventSink /
// taskfabric.WithEventSink (directly or through a trace.Tee) and read
// it back with Snapshot. Safe for concurrent use.
type Exporter struct {
	mu        sync.Mutex
	ring      []Span // completed spans, bounded
	next      int
	full      bool
	chunks    map[uint64]*Span // open, by chunk id
	tasks     map[uint64]*Span // open, by task id
	regions   []*Span          // open region spans, LIFO (nesting)
	regionSeq uint64
	st        Stats
	nowFn     func() int64 // test seam; time.Now().UnixNano()
}

// NewExporter creates an exporter retaining the last capacity completed
// spans (DefaultCapacity if capacity <= 0).
func NewExporter(capacity int) *Exporter {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Exporter{
		ring:   make([]Span, 0, capacity),
		chunks: make(map[uint64]*Span),
		tasks:  make(map[uint64]*Span),
		nowFn:  func() int64 { return time.Now().UnixNano() },
	}
}

// open starts (or re-dispatches) the span for one unit of work.
func (x *Exporter) open(open map[uint64]*Span, kind Kind, id uint64, domain int) {
	x.mu.Lock()
	defer x.mu.Unlock()
	sp := open[id]
	if sp == nil {
		sp = &Span{ID: id, Kind: kind, StartNs: x.nowFn(), Sends: 1, Domains: []int{domain}}
		open[id] = sp
		x.st.Opened++
		return
	}
	// Re-dispatch of an already-open span: a deadline retry, a steal
	// migration or a loss recovery.
	sp.Sends++
	sp.Retried = true
	sp.Domains = append(sp.Domains, domain)
	x.st.Retries++
	if domain < 0 && sp.Domains[0] >= 0 {
		sp.Recovered = true
		x.st.Recovered++
	}
}

// complete settles the span for one unit of work and retires it into
// the ring.
func (x *Exporter) complete(open map[uint64]*Span, kind Kind, id uint64, domain int) {
	x.mu.Lock()
	defer x.mu.Unlock()
	sp := open[id]
	if sp == nil {
		// Result without an observed dispatch (sink wired mid-run):
		// synthesize a zero-length span so counts still balance.
		now := x.nowFn()
		sp = &Span{ID: id, Kind: kind, StartNs: now}
		x.st.Opened++
	} else {
		delete(open, id)
	}
	sp.Domain = domain
	sp.EndNs = x.nowFn()
	sp.DurNs = sp.EndNs - sp.StartNs
	if len(sp.Domains) == 1 {
		sp.Domains = nil // the single executor is already in Domain
	}
	x.retire(*sp)
}

// retire appends one completed span to the bounded ring. Caller holds mu.
func (x *Exporter) retire(sp Span) {
	x.st.Completed++
	if len(x.ring) < cap(x.ring) {
		x.ring = append(x.ring, sp)
		return
	}
	x.ring[x.next] = sp
	x.next = (x.next + 1) % cap(x.ring)
	x.full = true
	x.st.Dropped++
}

// OffloadSend implements offload.EventSink: a chunk dispatched to a
// domain (-1 = host-local).
func (x *Exporter) OffloadSend(domain, chunk int) {
	x.open(x.chunks, KindChunk, uint64(chunk), domain)
}

// OffloadRecv implements offload.EventSink: a chunk result accepted.
func (x *Exporter) OffloadRecv(domain, chunk int) {
	x.complete(x.chunks, KindChunk, uint64(chunk), domain)
}

// TaskSend implements taskfabric.EventSink: a task dispatched to a
// domain (-1 = host-local).
func (x *Exporter) TaskSend(domain, task int) {
	x.open(x.tasks, KindTask, uint64(task), domain)
}

// TaskRecv implements taskfabric.EventSink: a task result accepted.
func (x *Exporter) TaskRecv(domain, task int) {
	x.complete(x.tasks, KindTask, uint64(task), domain)
}

// TaskSteal implements taskfabric.EventSink. Steal grants carry domain
// ids, not task ids, so migrations are counted rather than attributed;
// the migrated tasks' spans still show the extra send.
func (x *Exporter) TaskSteal(_, _ int) {
	x.mu.Lock()
	x.st.Steals++
	x.mu.Unlock()
}

// PeerSteal implements taskfabric.PeerStealSink: a direct mesh steal,
// already counted in Steals via the accompanying TaskSteal callback.
func (x *Exporter) PeerSteal(_, _ int) {
	x.mu.Lock()
	x.st.PeerSteals++
	x.mu.Unlock()
}

// Fork implements core.Monitor: opens a region span.
func (x *Exporter) Fork(n int) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.regionSeq++
	sp := &Span{ID: x.regionSeq, Kind: KindRegion, Domain: -1, N: n,
		StartNs: x.nowFn(), Sends: 1}
	x.regions = append(x.regions, sp)
	x.st.Opened++
}

// Join implements core.Monitor: completes the most recently opened
// region span (regions join LIFO on one runtime).
func (x *Exporter) Join() {
	x.mu.Lock()
	defer x.mu.Unlock()
	if len(x.regions) == 0 {
		return
	}
	sp := x.regions[len(x.regions)-1]
	x.regions = x.regions[:len(x.regions)-1]
	sp.EndNs = x.nowFn()
	sp.DurNs = sp.EndNs - sp.StartNs
	x.retire(*sp)
}

// The remaining core.Monitor callbacks carry no span boundaries.

// Charge implements core.Monitor.
func (x *Exporter) Charge(int, float64) {}

// Barrier implements core.Monitor.
func (x *Exporter) Barrier() {}

// CriticalEnter implements core.Monitor.
func (x *Exporter) CriticalEnter(int) {}

// CriticalExit implements core.Monitor.
func (x *Exporter) CriticalExit(int) {}

// Single implements core.Monitor.
func (x *Exporter) Single(int) {}

// Reduction implements core.Monitor.
func (x *Exporter) Reduction(int) {}

// Task implements core.Monitor.
func (x *Exporter) Task(int) {}

// Steal implements core.Monitor (intra-team deque steal, not a fabric
// migration).
func (x *Exporter) Steal(int, int) {}

// NestedFork implements core.Monitor. Nested regions are not folded:
// only top-level forks the runtime reports via Fork become spans.
func (x *Exporter) NestedFork(int, int) {}

// NestedJoin implements core.Monitor.
func (x *Exporter) NestedJoin(int) {}

// Cancel implements core.Monitor.
func (x *Exporter) Cancel() {}

var _ core.Monitor = (*Exporter)(nil)

// Completed returns the retained completed spans, oldest first.
func (x *Exporter) Completed() []Span {
	x.mu.Lock()
	defer x.mu.Unlock()
	if !x.full {
		return append([]Span(nil), x.ring...)
	}
	out := make([]Span, 0, cap(x.ring))
	out = append(out, x.ring[x.next:]...)
	out = append(out, x.ring[:x.next]...)
	return out
}

// Open returns the currently open spans (order unspecified).
func (x *Exporter) Open() []Span {
	x.mu.Lock()
	defer x.mu.Unlock()
	out := make([]Span, 0, len(x.chunks)+len(x.tasks)+len(x.regions))
	for _, sp := range x.chunks {
		out = append(out, *sp)
	}
	for _, sp := range x.tasks {
		out = append(out, *sp)
	}
	for _, sp := range x.regions {
		out = append(out, *sp)
	}
	return out
}

// Stats returns the whole-run aggregates.
func (x *Exporter) Stats() Stats {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.st
}

// Snapshot assembles the full JSON view: retained spans, open spans,
// aggregates.
func (x *Exporter) Snapshot() View {
	return View{Spans: x.Completed(), Open: x.Open(), Stats: x.Stats()}
}

// ExportJSON serializes Snapshot.
func (x *Exporter) ExportJSON() ([]byte, error) {
	return json.Marshal(x.Snapshot())
}

// Reset clears the exporter: ring, open spans and aggregates.
func (x *Exporter) Reset() {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.ring = x.ring[:0]
	x.next = 0
	x.full = false
	x.chunks = make(map[uint64]*Span)
	x.tasks = make(map[uint64]*Span)
	x.regions = nil
	x.regionSeq = 0
	x.st = Stats{}
}
