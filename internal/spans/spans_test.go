package spans

import (
	"encoding/json"
	"sync"
	"testing"
)

// stub clock: deterministic, strictly advancing.
func stubClock(x *Exporter) func(int64) {
	var now int64
	x.nowFn = func() int64 { return now }
	return func(ns int64) { now = ns }
}

func TestChunkSpanLifecycle(t *testing.T) {
	x := NewExporter(8)
	tick := stubClock(x)

	tick(100)
	x.OffloadSend(1, 7)
	tick(350)
	x.OffloadRecv(1, 7)

	spans := x.Completed()
	if len(spans) != 1 {
		t.Fatalf("completed %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Kind != KindChunk || sp.ID != 7 || sp.Domain != 1 {
		t.Errorf("span = %+v, want chunk 7 on domain 1", sp)
	}
	if sp.StartNs != 100 || sp.EndNs != 350 || sp.DurNs != 250 {
		t.Errorf("span times = %d..%d (%d), want 100..350 (250)", sp.StartNs, sp.EndNs, sp.DurNs)
	}
	if sp.Retried || sp.Recovered || sp.Sends != 1 || sp.Domains != nil {
		t.Errorf("clean single dispatch mis-annotated: %+v", sp)
	}
	if st := x.Stats(); st.Opened != 1 || st.Completed != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRetryAndRecoveryAnnotations(t *testing.T) {
	x := NewExporter(8)
	tick := stubClock(x)

	// Task 3: sent to domain 2, re-dispatched to domain 1 (deadline
	// retry), finally re-executed on the host (-1) — the loss-recovery
	// signature.
	tick(10)
	x.TaskSend(2, 3)
	x.TaskSend(1, 3)
	x.TaskSend(-1, 3)
	tick(90)
	x.TaskRecv(-1, 3)

	spans := x.Completed()
	if len(spans) != 1 {
		t.Fatalf("completed %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if !sp.Retried || !sp.Recovered {
		t.Errorf("retried/recovered = %v/%v, want true/true", sp.Retried, sp.Recovered)
	}
	if sp.Sends != 3 {
		t.Errorf("sends = %d, want 3", sp.Sends)
	}
	if want := []int{2, 1, -1}; len(sp.Domains) != 3 || sp.Domains[0] != want[0] ||
		sp.Domains[1] != want[1] || sp.Domains[2] != want[2] {
		t.Errorf("domains = %v, want %v", sp.Domains, want)
	}
	st := x.Stats()
	if st.Retries != 2 || st.Recovered != 1 {
		t.Errorf("stats retries/recovered = %d/%d, want 2/1", st.Retries, st.Recovered)
	}

	// Host-only work never counts as recovered.
	x.TaskSend(-1, 4)
	x.TaskSend(-1, 4)
	x.TaskRecv(-1, 4)
	if st := x.Stats(); st.Recovered != 1 {
		t.Errorf("host-local retry counted as recovery: %+v", st)
	}
}

func TestRegionSpansFoldLIFO(t *testing.T) {
	x := NewExporter(8)
	tick := stubClock(x)

	tick(1000)
	x.Fork(4)
	tick(1500)
	x.Fork(2) // nested/overlapping region joins first
	tick(1600)
	x.Join()
	tick(2000)
	x.Join()
	x.Join() // unmatched join: ignored, not a crash

	spans := x.Completed()
	if len(spans) != 2 {
		t.Fatalf("completed %d region spans, want 2", len(spans))
	}
	inner, outer := spans[0], spans[1]
	if inner.N != 2 || inner.DurNs != 100 {
		t.Errorf("inner region = %+v, want n=2 dur=100", inner)
	}
	if outer.N != 4 || outer.DurNs != 1000 {
		t.Errorf("outer region = %+v, want n=4 dur=1000", outer)
	}
}

func TestUnmatchedResultSynthesizesSpan(t *testing.T) {
	// A result for a dispatch the sink never saw (wired mid-run) must
	// still balance the books with a zero-length span.
	x := NewExporter(8)
	stubClock(x)(500)
	x.OffloadRecv(0, 99)
	spans := x.Completed()
	if len(spans) != 1 || spans[0].DurNs != 0 {
		t.Fatalf("spans = %+v, want one zero-length span", spans)
	}
	if st := x.Stats(); st.Opened != 1 || st.Completed != 1 {
		t.Errorf("stats = %+v, want opened == completed == 1", st)
	}
}

func TestRingBoundAndDropAccounting(t *testing.T) {
	x := NewExporter(4)
	for i := 0; i < 10; i++ {
		x.TaskSend(0, uint64ID(i))
		x.TaskRecv(0, uint64ID(i))
	}
	spans := x.Completed()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	// Oldest first: 6, 7, 8, 9.
	for i, sp := range spans {
		if want := uint64(6 + i); sp.ID != want {
			t.Errorf("span[%d].ID = %d, want %d", i, sp.ID, want)
		}
	}
	st := x.Stats()
	if st.Completed != 10 || st.Dropped != 6 {
		t.Errorf("completed/dropped = %d/%d, want 10/6", st.Completed, st.Dropped)
	}
}

func uint64ID(i int) int { return i }

func TestOpenSpansVisibleAndSnapshotSerializes(t *testing.T) {
	x := NewExporter(8)
	x.TaskSend(1, 5)
	x.OffloadSend(0, 2)
	x.Fork(3)
	open := x.Open()
	if len(open) != 3 {
		t.Fatalf("open = %d spans, want 3", len(open))
	}
	raw, err := x.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	var v View
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatal(err)
	}
	if len(v.Open) != 3 || v.Stats.Opened != 3 {
		t.Errorf("snapshot = %+v, want 3 open / 3 opened", v)
	}

	x.Reset()
	if len(x.Open()) != 0 || len(x.Completed()) != 0 || x.Stats() != (Stats{}) {
		t.Error("state survived Reset")
	}
}

func TestConcurrentFolding(t *testing.T) {
	// Emitters racing over disjoint id ranges: every span must complete
	// exactly once and the aggregates must balance — the property is
	// freedom from races and lost updates, enforced under -race.
	x := NewExporter(64)
	const emitters, per = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < emitters; g++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := base*per + i
				x.TaskSend(base%3, id)
				if i%5 == 0 {
					x.TaskSend(-1, id) // re-dispatch
				}
				x.TaskRecv(base%3, id)
				x.TaskSteal(base%3, (base+1)%3)
			}
		}(g)
	}
	wg.Wait()
	st := x.Stats()
	const total = emitters * per
	if st.Opened != total || st.Completed != total {
		t.Errorf("opened/completed = %d/%d, want %d/%d", st.Opened, st.Completed, total, total)
	}
	if st.Steals != total {
		t.Errorf("steals = %d, want %d", st.Steals, total)
	}
	if want := uint64(emitters * (per / 5)); st.Retries != want {
		t.Errorf("retries = %d, want %d", st.Retries, want)
	}
	if len(x.Open()) != 0 {
		t.Errorf("%d spans left open", len(x.Open()))
	}
	if got := len(x.Completed()); got != 64 {
		t.Errorf("ring retained %d, want 64", got)
	}
}
