// Package syncq provides a timed condition variable: waiters park on
// per-waiter channels so a timeout can abandon the wait without losing a
// wakeup. It backs the blocking primitives of both the MRAPI and MCAPI
// implementations.
//
// Wait sits under every blocking MCAPI enqueue/dequeue, so its
// allocations are on the runtime's hottest message path. By default both
// the per-waiter wakeup channel and the timeout timer come from
// sync.Pools; SetPooling(false) restores the allocate-per-wait behavior
// as an ablation baseline (the seed's behavior), keeping the cost of the
// optimization measurable.
package syncq

import (
	"sync"
	"sync/atomic"
	"time"
)

// pooling gates waiter-channel and timer reuse; on by default.
var pooling atomic.Bool

func init() { pooling.Store(true) }

// SetPooling toggles waiter/timer pooling in Wait. It exists as an
// ablation knob for benchmarks; production callers leave it on.
func SetPooling(on bool) { pooling.Store(on) }

// PoolingEnabled reports whether Wait reuses pooled waiters and timers.
func PoolingEnabled() bool { return pooling.Load() }

// waiterPool recycles wakeup channels. A channel is returned only after
// it has been removed from its queue and drained, so a pooled channel is
// always empty and unreferenced.
var waiterPool = sync.Pool{
	New: func() any { return make(chan struct{}, 1) },
}

// timerPool recycles timeout timers. Timers are Stop()ed before being
// returned; under the go>=1.23 timer semantics a stopped timer's channel
// never yields a stale value, so Reset is sufficient to rearm one.
var timerPool sync.Pool

// WaitQueue is a timed condition variable. All methods must be called with
// the owning mutex held.
type WaitQueue struct {
	waiters []chan struct{}
}

// Wait releases mu, parks until signaled or timed out, then reacquires mu.
// infinite ignores d. It reports true when signaled (the caller must
// re-check its predicate, condition-variable style) and false on timeout.
func (q *WaitQueue) Wait(mu *sync.Mutex, d time.Duration, infinite bool) bool {
	pooled := pooling.Load()
	var ch chan struct{}
	if pooled {
		ch = waiterPool.Get().(chan struct{})
	} else {
		ch = make(chan struct{}, 1)
	}
	q.waiters = append(q.waiters, ch)
	mu.Unlock()

	signaled := true
	if infinite {
		<-ch
	} else {
		var t *time.Timer
		if pooled {
			if pt, _ := timerPool.Get().(*time.Timer); pt != nil {
				t = pt
				t.Reset(d)
			}
		}
		if t == nil {
			t = time.NewTimer(d)
		}
		select {
		case <-ch:
			t.Stop()
		case <-t.C:
			signaled = false
		}
		if pooled {
			t.Stop()
			timerPool.Put(t)
		}
	}

	mu.Lock()
	if !signaled {
		// Remove our channel if still queued; if it is gone we were
		// signaled concurrently with the timeout — pass the wakeup on so
		// it is not lost.
		found := false
		for i, w := range q.waiters {
			if w == ch {
				q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
				found = true
				break
			}
		}
		if !found {
			select {
			case <-ch:
				q.Signal()
			default:
			}
		}
	}
	// Here ch is off the queue (Signal/Broadcast remove it before
	// sending; the timeout path removed or drained it above) and empty,
	// so it is safe to recycle.
	if pooled {
		waiterPool.Put(ch)
	}
	return signaled
}

// Signal wakes one waiter, if any.
func (q *WaitQueue) Signal() {
	if len(q.waiters) == 0 {
		return
	}
	ch := q.waiters[0]
	q.waiters = q.waiters[1:]
	ch <- struct{}{}
}

// Broadcast wakes every waiter.
func (q *WaitQueue) Broadcast() {
	for _, ch := range q.waiters {
		ch <- struct{}{}
	}
	q.waiters = nil
}

// Len reports the number of parked waiters.
func (q *WaitQueue) Len() int { return len(q.waiters) }
