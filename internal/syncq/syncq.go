// Package syncq provides a timed condition variable: waiters park on
// per-waiter channels so a timeout can abandon the wait without losing a
// wakeup. It backs the blocking primitives of both the MRAPI and MCAPI
// implementations.
package syncq

import (
	"sync"
	"time"
)

// WaitQueue is a timed condition variable. All methods must be called with
// the owning mutex held.
type WaitQueue struct {
	waiters []chan struct{}
}

// Wait releases mu, parks until signaled or timed out, then reacquires mu.
// infinite ignores d. It reports true when signaled (the caller must
// re-check its predicate, condition-variable style) and false on timeout.
func (q *WaitQueue) Wait(mu *sync.Mutex, d time.Duration, infinite bool) bool {
	ch := make(chan struct{}, 1)
	q.waiters = append(q.waiters, ch)
	mu.Unlock()

	signaled := true
	if infinite {
		<-ch
	} else {
		t := time.NewTimer(d)
		select {
		case <-ch:
			t.Stop()
		case <-t.C:
			signaled = false
		}
	}

	mu.Lock()
	if !signaled {
		// Remove our channel if still queued; if it is gone we were
		// signaled concurrently with the timeout — pass the wakeup on so
		// it is not lost.
		found := false
		for i, w := range q.waiters {
			if w == ch {
				q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
				found = true
				break
			}
		}
		if !found {
			select {
			case <-ch:
				q.Signal()
			default:
			}
		}
	}
	return signaled
}

// Signal wakes one waiter, if any.
func (q *WaitQueue) Signal() {
	if len(q.waiters) == 0 {
		return
	}
	ch := q.waiters[0]
	q.waiters = q.waiters[1:]
	ch <- struct{}{}
}

// Broadcast wakes every waiter.
func (q *WaitQueue) Broadcast() {
	for _, ch := range q.waiters {
		ch <- struct{}{}
	}
	q.waiters = nil
}

// Len reports the number of parked waiters.
func (q *WaitQueue) Len() int { return len(q.waiters) }
