package syncq

import (
	"sync"
	"testing"
	"time"
)

func TestSignalWakesOneWaiter(t *testing.T) {
	var mu sync.Mutex
	var q WaitQueue
	got := make(chan bool, 2)
	for i := 0; i < 2; i++ {
		go func() {
			mu.Lock()
			ok := q.Wait(&mu, 0, true)
			mu.Unlock()
			got <- ok
		}()
	}
	for len(func() []chan struct{} { mu.Lock(); defer mu.Unlock(); return q.waiters }()) < 2 {
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	q.Signal()
	mu.Unlock()
	if ok := <-got; !ok {
		t.Error("signaled waiter reported timeout")
	}
	select {
	case <-got:
		t.Error("second waiter woke without a signal")
	case <-time.After(20 * time.Millisecond):
	}
	mu.Lock()
	q.Broadcast()
	mu.Unlock()
	if ok := <-got; !ok {
		t.Error("broadcast waiter reported timeout")
	}
}

func TestWaitTimesOut(t *testing.T) {
	var mu sync.Mutex
	var q WaitQueue
	start := time.Now()
	mu.Lock()
	ok := q.Wait(&mu, 15*time.Millisecond, false)
	if q.Len() != 0 {
		t.Errorf("timed-out waiter left in queue (len %d)", q.Len())
	}
	mu.Unlock()
	if ok {
		t.Error("expected timeout")
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Error("returned before the timeout")
	}
}

func TestConcurrentSignalAndTimeoutLosesNoWakeups(t *testing.T) {
	// Hammer the race between Signal and a timing-out waiter: every
	// Signal must eventually wake exactly one live waiter or be passed on.
	var mu sync.Mutex
	var q WaitQueue
	const producers = 200
	woken := make(chan struct{}, producers*2)
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			for {
				select {
				case <-stop:
					return
				default:
				}
				mu.Lock()
				if q.Wait(&mu, time.Microsecond*50, false) {
					woken <- struct{}{}
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < producers; i++ {
		mu.Lock()
		q.Signal()
		mu.Unlock()
		time.Sleep(time.Microsecond * 20)
	}
	// Every accounted signal either woke a waiter or found an empty queue
	// (Signal on empty queue is a no-op by design). We only require no
	// deadlock/panic and that some wakeups flowed.
	close(stop)
	if len(woken) == 0 {
		t.Error("no waiter ever woke")
	}
}

// runPoolingModes runs f once with pooling enabled and once disabled,
// restoring the default afterwards.
func runPoolingModes(t *testing.T, f func(t *testing.T)) {
	t.Helper()
	for _, on := range []bool{true, false} {
		name := "pooled"
		if !on {
			name = "unpooled"
		}
		t.Run(name, func(t *testing.T) {
			SetPooling(on)
			defer SetPooling(true)
			f(t)
		})
	}
}

func TestPoolingModesSignalAndTimeout(t *testing.T) {
	runPoolingModes(t, func(t *testing.T) {
		var mu sync.Mutex
		var q WaitQueue

		// Timeout path returns the waiter cleanly in both modes.
		mu.Lock()
		if q.Wait(&mu, 5*time.Millisecond, false) {
			t.Error("expected timeout")
		}
		if q.Len() != 0 {
			t.Errorf("timed-out waiter left queued (len %d)", q.Len())
		}
		mu.Unlock()

		// Signal path: park, signal, observe the wakeup.
		done := make(chan bool, 1)
		go func() {
			mu.Lock()
			ok := q.Wait(&mu, time.Second, false)
			mu.Unlock()
			done <- ok
		}()
		for {
			mu.Lock()
			n := q.Len()
			mu.Unlock()
			if n == 1 {
				break
			}
			time.Sleep(time.Millisecond)
		}
		mu.Lock()
		q.Signal()
		mu.Unlock()
		if !<-done {
			t.Error("signaled waiter reported timeout")
		}
	})
}

// TestPooledWaiterIsNotResignaled reuses waiters through the pool many
// times concurrently; a stale wakeup left in a recycled channel would
// surface as a Wait returning signaled with no Signal outstanding.
func TestPooledWaiterIsNotResignaled(t *testing.T) {
	SetPooling(true)
	var mu sync.Mutex
	var q WaitQueue
	for i := 0; i < 500; i++ {
		mu.Lock()
		q.Signal() // no waiter: must be a no-op, not a stale credit
		if q.Wait(&mu, 50*time.Microsecond, false) {
			t.Fatalf("iteration %d: woke with no signal outstanding", i)
		}
		mu.Unlock()
	}
}

func BenchmarkWaitTimeout(b *testing.B) {
	for _, on := range []bool{true, false} {
		name := "pooled"
		if !on {
			name = "unpooled"
		}
		b.Run(name, func(b *testing.B) {
			SetPooling(on)
			defer SetPooling(true)
			var mu sync.Mutex
			var q WaitQueue
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mu.Lock()
				q.Wait(&mu, time.Microsecond, false)
				mu.Unlock()
			}
		})
	}
}
