package taskfabric

import (
	"fmt"
	"testing"
	"time"
)

// TestAblationBatching runs the same task graph with frame batching on
// and off and demands identical results: the knob exists for benchmark
// ablations, not behavior changes.
func TestAblationBatching(t *testing.T) {
	for _, batch := range []bool{true, false} {
		t.Run(fmt.Sprintf("batch=%v", batch), func(t *testing.T) {
			f, err := NewFabric(testRegistry(t),
				WithDomains(3),
				WithHeartbeat(10*time.Millisecond),
				WithBatching(batch),
			)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()

			g := f.NewGroup()
			const n = 24
			var want uint64
			handles := make([]*TaskHandle, 0, n)
			for i := 0; i < n; i++ {
				h, err := g.SubmitJob("sleepsum", sleepSumArg(1, uint64(i)*3+1))
				if err != nil {
					t.Fatal(err)
				}
				handles = append(handles, h)
				want += uint64(i)*3 + 1
			}
			if err := g.WaitAll(TimeoutInfinite); err != nil {
				t.Fatalf("WaitAll: %v", err)
			}
			var got uint64
			for _, h := range handles {
				res, err := h.Wait(0)
				if err != nil {
					t.Fatalf("task %d: %v", h.ID(), err)
				}
				got += decodeU64(t, res)
			}
			if got != want {
				t.Errorf("sum = %d, want %d", got, want)
			}
			if st := f.Stats(); st.RemoteTasks == 0 {
				t.Error("no tasks ran remotely")
			}
		})
	}
}
