package taskfabric

import (
	"sync"
	"sync/atomic"

	"openmpmca/internal/core"
	"openmpmca/internal/mcapi"
	"openmpmca/internal/mtapi"
	"openmpmca/internal/offload"
)

// fabricJob is the one MTAPI job every worker node registers: "execute a
// fabric task frame". The frame's job name selects the actual work, so
// the wire stays name-based while the local scheduler stays MTAPI.
const fabricJob mtapi.JobID = 1

// queuedTask is one task frame accepted by a worker but not yet running:
// the unit of currency for steal grants and group-done drops, both of
// which work by canceling the still-queued MTAPI task.
type queuedTask struct {
	frame offload.TaskFrame
	mt    *mtapi.Task // nil for the instant between map insert and Start
}

// worker is the domain side of the fabric: an OpenMP runtime in its own
// hypervisor partition, a local MTAPI node scheduling accepted tasks
// onto it, and service loops speaking the task-frame protocol with the
// host. Like offload's domains it is reachable only through MCAPI.
type worker struct {
	id   int    // 1-based; MCAPI domain ID and partition ordinal
	name string // hypervisor partition name
	rt   *core.Runtime
	node *mcapi.Node
	mt   *mtapi.Node
	reg  *Registry

	cmdRecv *mcapi.PktRecvHandle // host -> worker task/steal/group frames
	resSend *mcapi.PktSendHandle // worker -> host results/yields/credits
	hbEp    *mcapi.Endpoint      // receives host pings
	hbHost  *mcapi.Endpoint      // host endpoint pongs are sent to
	batch   bool                 // coalesce outbound frames per flush

	killed atomic.Bool
	cmdReq atomic.Pointer[mcapi.Request]
	hbReq  atomic.Pointer[mcapi.Request]
	wg     sync.WaitGroup

	sendMu  sync.Mutex // serializes result/yield/credit sends
	qmu     sync.Mutex
	queued  map[uint64]*queuedTask // accepted, not yet started
	running int                    // tasks currently executing
}

func newWorker(id int, name string, rt *core.Runtime, node *mcapi.Node,
	reg *Registry, cmdRecv *mcapi.PktRecvHandle, resSend *mcapi.PktSendHandle,
	hbEp, hbHost *mcapi.Endpoint, mtWorkers int, batch bool) (*worker, error) {
	w := &worker{
		id:      id,
		name:    name,
		rt:      rt,
		node:    node,
		mt:      mtapi.NewNode(uint32(id), 0, &mtapi.NodeAttributes{Workers: mtWorkers}),
		reg:     reg,
		cmdRecv: cmdRecv,
		resSend: resSend,
		hbEp:    hbEp,
		hbHost:  hbHost,
		batch:   batch,
		queued:  make(map[uint64]*queuedTask),
	}
	if _, err := w.mt.CreateAction(fabricJob, "taskfabric", w.execute); err != nil {
		w.mt.Shutdown()
		return nil, err
	}
	return w, nil
}

func (w *worker) start() {
	w.wg.Add(2)
	go w.dispatch()
	go w.heartbeat()
}

// Kill simulates the domain crashing: the service loops abandon their
// receives, the queue dies with the firmware image, and results of tasks
// already running are suppressed. The host learns of the crash the way
// real hardware would — missed heartbeats. Idempotent.
func (w *worker) Kill() {
	if !w.killed.CompareAndSwap(false, true) {
		return
	}
	if r := w.cmdReq.Load(); r != nil {
		_ = r.Cancel()
	}
	if r := w.hbReq.Load(); r != nil {
		_ = r.Cancel()
	}
	w.qmu.Lock()
	for id, qt := range w.queued {
		if qt.mt != nil {
			_ = qt.mt.Cancel()
		}
		delete(w.queued, id)
	}
	w.qmu.Unlock()
}

// restart brings a killed worker back for re-admission, mirroring
// offload's domain restart: the crash flag clears and fresh service
// loops start against the still-wired MCAPI endpoints.
func (w *worker) restart() bool {
	if !w.killed.CompareAndSwap(true, false) {
		return false
	}
	w.start()
	return true
}

// stop tears the worker down for good. The MCAPI node is finalized
// before waiting so loops blocked in receives are woken; the host must
// have finalized its node first so a blocked result send is woken too.
// The MTAPI node drains last: its running tasks' sends fail fast once
// the host endpoints are gone.
func (w *worker) stop() {
	w.Kill()
	_ = w.node.Finalize()
	w.wg.Wait()
	w.mt.Shutdown()
	_ = w.rt.Close()
}

// dispatch is the worker's command loop, one frame per MCAPI packet.
// Receives are issued as cancelable requests so Kill can yank the loop
// out from under a blocked receive.
func (w *worker) dispatch() {
	defer w.wg.Done()
	for {
		req := w.cmdRecv.RecvI(mcapi.TimeoutInfinite)
		w.cmdReq.Store(req)
		if w.killed.Load() {
			_ = req.Cancel()
		}
		if err := req.Wait(mcapi.TimeoutInfinite); err != nil {
			return
		}
		pkt, _, _ := req.Payload()
		kind, ok := offload.FrameKind(pkt)
		if !ok {
			continue
		}
		if kind == offload.KindBatch {
			frames, err := offload.DecodeBatch(pkt)
			if err != nil {
				continue
			}
			for _, fr := range frames {
				if k, fok := offload.FrameKind(fr); fok {
					if !w.handle(k, fr) {
						return
					}
				}
			}
			continue
		}
		if !w.handle(kind, pkt) {
			return
		}
	}
}

// handle processes one unwrapped command frame; false means shut down.
func (w *worker) handle(kind offload.WireKind, pkt []byte) bool {
	switch kind {
	case offload.KindFabricShutdown:
		return false
	case offload.KindTask:
		w.accept(pkt)
	case offload.KindStealGrant:
		w.yield(pkt)
	case offload.KindGroupDone:
		w.dropGroup(pkt)
	}
	return true
}

// accept enqueues one task frame on the local MTAPI node. The queued-map
// insert happens before Start so a steal grant can always find the task;
// the mt field is backfilled under the lock, and skipped if the MTAPI
// worker already started (and removed) the task in between.
func (w *worker) accept(pkt []byte) {
	// The dispatcher owns each delivered packet exclusively and never
	// recycles it, so the frame's argument may alias it.
	f, err := offload.DecodeTaskFrameShared(offload.KindTask, pkt)
	if err != nil {
		return
	}
	qt := &queuedTask{frame: f}
	w.qmu.Lock()
	w.queued[f.Task] = qt
	w.qmu.Unlock()
	t, err := w.mt.Start(fabricJob, qt, nil)
	if err != nil {
		w.qmu.Lock()
		delete(w.queued, f.Task)
		w.qmu.Unlock()
		return // node down; the host's deadline re-dispatches the task
	}
	w.qmu.Lock()
	if _, still := w.queued[f.Task]; still {
		qt.mt = t
	}
	w.qmu.Unlock()
}

// execute is the MTAPI action behind every fabric task: resolve the job
// by name, run it on this domain's OpenMP runtime, send the result and a
// fresh credit report. A killed worker's results die with it.
func (w *worker) execute(args any) (any, error) {
	qt := args.(*queuedTask)
	f := qt.frame
	w.qmu.Lock()
	delete(w.queued, f.Task)
	w.running++
	w.qmu.Unlock()

	res := offload.TaskResultFrame{Task: f.Task, Attempt: f.Attempt}
	if job, ok := w.reg.Lookup(f.Job); !ok {
		res.Status = offload.StatusUnknownJob
		res.Payload = []byte(f.Job)
	} else if payload, jerr := job.Execute(w.rt, f.Arg); jerr != nil {
		res.Status = offload.StatusJobError
		res.Payload = []byte(jerr.Error())
	} else {
		res.Payload = payload
	}

	w.qmu.Lock()
	w.running--
	credit := offload.CreditFrame{
		Domain:  uint32(w.id),
		Queued:  uint32(len(w.queued)),
		Running: uint32(w.running),
	}
	w.qmu.Unlock()
	if w.killed.Load() {
		// Crashed mid-task: the computed result dies with the domain.
		return nil, nil
	}
	w.flush(offload.EncodeTaskResult(res), offload.EncodeCredit(credit))
	return nil, nil
}

// flush ships encoded frames to the host under sendMu — one batch packet
// when batching is on, one packet per frame otherwise — and recycles
// them. A failed send drops the remaining frames: the host's deadline
// and credit machinery recover, exactly as with unbatched sends.
func (w *worker) flush(frames ...[]byte) {
	w.sendMu.Lock()
	defer w.sendMu.Unlock()
	if w.batch {
		var b offload.Batcher
		for _, fr := range frames {
			b.Add(fr)
		}
		_ = b.Flush(func(pkt []byte) error {
			return w.resSend.Send(pkt, mcapi.TimeoutInfinite)
		})
		return
	}
	for i, fr := range frames {
		err := w.resSend.Send(fr, mcapi.TimeoutInfinite)
		offload.RecycleFrame(fr)
		if err != nil {
			for _, rest := range frames[i+1:] {
				offload.RecycleFrame(rest)
			}
			return
		}
	}
}

// yield answers a steal grant: cancel up to Want still-queued tasks —
// mtapi.Task.Cancel succeeds only before the task starts running, which
// is exactly steal semantics — and hand their frames back to the host,
// followed by a credit report so the host can settle the grant.
func (w *worker) yield(pkt []byte) {
	g, err := offload.DecodeStealGrant(pkt)
	if err != nil {
		return
	}
	var yields []offload.TaskFrame
	w.qmu.Lock()
	for id, qt := range w.queued {
		if len(yields) >= int(g.Want) {
			break
		}
		if qt.mt == nil || qt.mt.Cancel() != nil {
			continue // about to run, or already running
		}
		delete(w.queued, id)
		yields = append(yields, qt.frame)
	}
	credit := offload.CreditFrame{
		Domain:  uint32(w.id),
		Queued:  uint32(len(w.queued)),
		Running: uint32(w.running),
	}
	w.qmu.Unlock()
	if w.killed.Load() {
		return
	}
	frames := make([][]byte, 0, len(yields)+1)
	for _, f := range yields {
		frames = append(frames, offload.EncodeTaskFrame(offload.KindTaskYield, f))
	}
	frames = append(frames, offload.EncodeCredit(credit))
	w.flush(frames...)
}

// dropGroup discards queued tasks of a completed or canceled group.
func (w *worker) dropGroup(pkt []byte) {
	gd, err := offload.DecodeGroupDone(pkt)
	if err != nil {
		return
	}
	w.qmu.Lock()
	for id, qt := range w.queued {
		if qt.frame.Group != gd.Group || qt.mt == nil {
			continue
		}
		if qt.mt.Cancel() != nil {
			continue
		}
		delete(w.queued, id)
	}
	w.qmu.Unlock()
}

// heartbeat answers host pings with pongs, exactly like offload domains:
// non-blocking pong sends, a full host queue just drops the pong.
func (w *worker) heartbeat() {
	defer w.wg.Done()
	for {
		req := mcapi.MsgRecvTI(w.hbEp, mcapi.TimeoutInfinite)
		w.hbReq.Store(req)
		if w.killed.Load() {
			_ = req.Cancel()
		}
		if err := req.Wait(mcapi.TimeoutInfinite); err != nil {
			return
		}
		msg, _, _ := req.Payload()
		ping, err := offload.DecodePing(msg)
		if err != nil {
			continue
		}
		pong := offload.EncodePong(offload.HBFrame{Domain: uint32(w.id), Seq: ping.Seq})
		err = mcapi.MsgSend(w.hbHost, pong, 0, mcapi.TimeoutImmediate)
		offload.RecycleFrame(pong)
		if err != nil {
			if err == mcapi.ErrMemLimit || err == mcapi.ErrTimeout {
				continue // queue full: drop the pong
			}
			return // host endpoint gone
		}
	}
}
