package taskfabric

import (
	"sync"
	"sync/atomic"
	"time"

	"openmpmca/internal/core"
	"openmpmca/internal/mcapi"
	"openmpmca/internal/mrapi"
	"openmpmca/internal/mtapi"
	"openmpmca/internal/offload"
)

// fabricJob is the one MTAPI job every worker node registers: "execute a
// fabric task frame". The frame's job name selects the actual work, so
// the wire stays name-based while the local scheduler stays MTAPI.
const fabricJob mtapi.JobID = 1

// rmemRef locates a task argument staged in an MRAPI window instead of
// carried inline: the read is deferred until the task actually runs, so
// a task that is yielded onward (to the host or straight to a peer)
// forwards the reference untouched and the bytes move exactly once.
type rmemRef struct {
	owner  uint32
	offset uint64
	length uint32
}

// queuedTask is one task frame accepted by a worker but not yet running:
// the unit of currency for steal grants and group-done drops, both of
// which work by canceling the still-queued MTAPI task.
type queuedTask struct {
	frame offload.TaskFrame
	ref   *rmemRef    // non-nil when the argument lives in a window
	mt    *mtapi.Task // nil for the instant between map insert and Start
}

// worker is the domain side of the fabric: an OpenMP runtime in its own
// hypervisor partition, a local MTAPI node scheduling accepted tasks
// onto it, and service loops speaking the task-frame protocol with the
// host. Like offload's domains it is reachable only through MCAPI.
type worker struct {
	id   int    // 1-based; MCAPI domain ID and partition ordinal
	name string // hypervisor partition name
	rt   *core.Runtime
	node *mcapi.Node
	mt   *mtapi.Node
	reg  *Registry

	cmdRecv *mcapi.PktRecvHandle // host -> worker task/steal/group frames
	resSend *mcapi.PktSendHandle // worker -> host results/yields/credits
	hbEp    *mcapi.Endpoint      // receives host pings
	hbHost  *mcapi.Endpoint      // host endpoint pongs are sent to
	batch   bool                 // coalesce outbound frames per flush

	killed atomic.Bool
	cmdReq atomic.Pointer[mcapi.Request]
	hbReq  atomic.Pointer[mcapi.Request]
	wg     sync.WaitGroup

	sendMu  sync.Mutex // serializes result/yield/credit sends
	qmu     sync.Mutex
	queued  map[uint64]*queuedTask // accepted, not yet started
	running int                    // tasks currently executing

	// Steal mesh (nil maps when peer stealing is off or single-domain).
	peerSend map[int]*mcapi.PktSendHandle
	peerRecv map[int]*mcapi.PktRecvHandle
	loadMap  atomic.Pointer[[]uint32] // latest host occupancy broadcast

	peerReqMu sync.Mutex
	peerReqs  map[int]*mcapi.Request // outstanding peer receives, by peer

	stealMu     sync.Mutex
	stealVictim int // domain a steal request is outstanding to; -1 none
	stealAt     time.Time

	// Zero-copy plane (nil when disabled).
	rnode       *mrapi.Node
	rarena      *mrapi.WindowArena
	rwin        []*mrapi.Rmem
	zeroCopyMin int
}

func newWorker(nl *offload.NetLink, reg *Registry, mtWorkers int,
	cfg *config, plane *rmemPlane) (*worker, error) {
	w := &worker{
		id:          nl.ID,
		name:        nl.Name,
		rt:          nl.RT,
		node:        nl.Node,
		mt:          mtapi.NewNode(uint32(nl.ID), 0, &mtapi.NodeAttributes{Workers: mtWorkers}),
		reg:         reg,
		cmdRecv:     nl.CmdRecv,
		resSend:     nl.ResSend,
		hbEp:        nl.HBEp,
		hbHost:      nl.HBHost,
		batch:       cfg.batch,
		queued:      make(map[uint64]*queuedTask),
		peerSend:    nl.PeerSend,
		peerRecv:    nl.PeerRecv,
		peerReqs:    make(map[int]*mcapi.Request),
		stealVictim: -1,
	}
	if plane != nil {
		w.rnode = plane.nodes[w.id]
		w.rarena = plane.arenas[w.id]
		w.rwin = plane.windows
		w.zeroCopyMin = cfg.zeroCopyMin
	}
	if _, err := w.mt.CreateAction(fabricJob, "taskfabric", w.execute); err != nil {
		w.mt.Shutdown()
		return nil, err
	}
	return w, nil
}

func (w *worker) start() {
	w.wg.Add(2)
	go w.dispatch()
	go w.heartbeat()
	for peer, recv := range w.peerRecv {
		w.wg.Add(1)
		go w.peerLoop(peer, recv)
	}
}

// Kill simulates the domain crashing: the service loops abandon their
// receives, the queue dies with the firmware image, and results of tasks
// already running are suppressed. The host learns of the crash the way
// real hardware would — missed heartbeats. Idempotent.
func (w *worker) Kill() {
	if !w.killed.CompareAndSwap(false, true) {
		return
	}
	if r := w.cmdReq.Load(); r != nil {
		_ = r.Cancel()
	}
	if r := w.hbReq.Load(); r != nil {
		_ = r.Cancel()
	}
	w.peerReqMu.Lock()
	for _, r := range w.peerReqs {
		_ = r.Cancel()
	}
	w.peerReqMu.Unlock()
	w.stealMu.Lock()
	w.stealVictim = -1
	w.stealMu.Unlock()
	w.qmu.Lock()
	for id, qt := range w.queued {
		if qt.mt != nil {
			_ = qt.mt.Cancel()
		}
		delete(w.queued, id)
	}
	w.qmu.Unlock()
}

// restart brings a killed worker back for re-admission, mirroring
// offload's domain restart: the crash flag clears and fresh service
// loops start against the still-wired MCAPI endpoints.
func (w *worker) restart() bool {
	if !w.killed.CompareAndSwap(true, false) {
		return false
	}
	w.start()
	return true
}

// stop tears the worker down for good. The MCAPI node is finalized
// before waiting so loops blocked in receives are woken; the host must
// have finalized its node first so a blocked result send is woken too.
// The MTAPI node drains last: its running tasks' sends fail fast once
// the host endpoints are gone.
func (w *worker) stop() {
	w.Kill()
	_ = w.node.Finalize()
	w.wg.Wait()
	w.mt.Shutdown()
	_ = w.rt.Close()
}

// dispatch is the worker's command loop, one frame per MCAPI packet.
// Receives are issued as cancelable requests so Kill can yank the loop
// out from under a blocked receive.
func (w *worker) dispatch() {
	defer w.wg.Done()
	for {
		req := w.cmdRecv.RecvI(mcapi.TimeoutInfinite)
		w.cmdReq.Store(req)
		if w.killed.Load() {
			_ = req.Cancel()
		}
		if err := req.Wait(mcapi.TimeoutInfinite); err != nil {
			return
		}
		pkt, _, _ := req.Payload()
		kind, ok := offload.FrameKind(pkt)
		if !ok {
			continue
		}
		if kind == offload.KindBatch {
			frames, err := offload.DecodeBatch(pkt)
			if err != nil {
				continue
			}
			for _, fr := range frames {
				if k, fok := offload.FrameKind(fr); fok {
					if !w.handle(k, fr) {
						return
					}
				}
			}
			continue
		}
		if !w.handle(kind, pkt) {
			return
		}
	}
}

// handle processes one unwrapped command frame; false means shut down.
func (w *worker) handle(kind offload.WireKind, pkt []byte) bool {
	switch kind {
	case offload.KindFabricShutdown:
		return false
	case offload.KindTask:
		w.accept(pkt)
	case offload.KindStealGrant:
		w.yield(pkt)
	case offload.KindGroupDone:
		w.dropGroup(pkt)
	case offload.KindRmemDesc:
		w.acceptDesc(pkt)
	case offload.KindRmemAck:
		if m, err := offload.DecodeRmemAck(pkt); err == nil && w.rarena != nil {
			w.rarena.Release(int(m.Offset))
		}
	case offload.KindLoadMap:
		w.onLoadMap(pkt)
	}
	return true
}

// accept enqueues one host-dispatched task frame.
func (w *worker) accept(pkt []byte) {
	// The dispatcher owns each delivered packet exclusively and never
	// recycles it, so the frame's argument may alias it.
	f, err := offload.DecodeTaskFrameShared(offload.KindTask, pkt)
	if err != nil {
		return
	}
	w.acceptFrame(f, nil)
}

// acceptDesc enqueues a task whose argument is staged in the host's
// MRAPI window: the descriptor rides the frame, the DMA read waits until
// the task actually runs.
func (w *worker) acceptDesc(pkt []byte) {
	d, err := offload.DecodeRmemDescShared(pkt)
	if err != nil || d.Inner != offload.KindTask || w.rnode == nil {
		return
	}
	if int(d.Owner) >= len(w.rwin) {
		return
	}
	f, err := offload.DecodeTaskFrameShared(offload.KindTask, d.Header)
	if err != nil {
		return
	}
	w.acceptFrame(f, &rmemRef{owner: d.Owner, offset: d.Offset, length: d.Length})
}

// acceptFrame enqueues one task frame on the local MTAPI node. The
// queued-map insert happens before Start so a steal grant can always
// find the task; the mt field is backfilled under the lock, and skipped
// if the MTAPI worker already started (and removed) the task in between.
// Duplicate deliveries — a fault-injected dup, or a peer yield racing a
// host re-dispatch — are rejected by task id.
func (w *worker) acceptFrame(f offload.TaskFrame, ref *rmemRef) bool {
	qt := &queuedTask{frame: f, ref: ref}
	w.qmu.Lock()
	if _, dup := w.queued[f.Task]; dup {
		w.qmu.Unlock()
		return false
	}
	w.queued[f.Task] = qt
	w.qmu.Unlock()
	t, err := w.mt.Start(fabricJob, qt, nil)
	if err != nil {
		w.qmu.Lock()
		delete(w.queued, f.Task)
		w.qmu.Unlock()
		return false // node down; the host's deadline re-dispatches the task
	}
	w.qmu.Lock()
	if cur, still := w.queued[f.Task]; still && cur == qt {
		qt.mt = t
	}
	w.qmu.Unlock()
	return true
}

// execute is the MTAPI action behind every fabric task: materialize the
// argument (inline, or DMA'd out of the owner's window when the frame
// carried a descriptor), resolve the job by name, run it on this
// domain's OpenMP runtime, send the result and a fresh credit report. A
// killed worker's results die with it. Going idle afterwards triggers a
// direct peer steal.
func (w *worker) execute(args any) (any, error) {
	qt := args.(*queuedTask)
	f := qt.frame
	w.qmu.Lock()
	delete(w.queued, f.Task)
	w.running++
	w.qmu.Unlock()

	arg := f.Arg
	if qt.ref != nil {
		data, err := mrapi.RmemReadPadded(w.rwin[qt.ref.owner], w.rnode,
			int(qt.ref.offset), int(qt.ref.length))
		if err != nil {
			// Window unreadable (plane torn down): drop the task; the
			// host's deadline re-dispatches it, inline if need be.
			w.qmu.Lock()
			w.running--
			w.qmu.Unlock()
			return nil, nil
		}
		arg = data
	}

	res := offload.TaskResultFrame{Task: f.Task, Attempt: f.Attempt}
	if job, ok := w.reg.Lookup(f.Job); !ok {
		res.Status = offload.StatusUnknownJob
		res.Payload = []byte(f.Job)
	} else if payload, jerr := job.Execute(w.rt, arg); jerr != nil {
		res.Status = offload.StatusJobError
		res.Payload = []byte(jerr.Error())
	} else {
		res.Payload = payload
	}

	w.qmu.Lock()
	w.running--
	credit := offload.CreditFrame{
		Domain:  uint32(w.id),
		Queued:  uint32(len(w.queued)),
		Running: uint32(w.running),
	}
	w.qmu.Unlock()
	if w.killed.Load() {
		// Crashed mid-task: the computed result dies with the domain.
		return nil, nil
	}
	w.flush(w.encodeResult(res), offload.EncodeCredit(credit))
	w.maybeSteal()
	return nil, nil
}

// encodeResult encodes a result frame, staging large OK payloads in the
// worker's own arena so only a descriptor rides the wire. Any plane
// hiccup — arena full, write failure — falls back to inline; the plane
// is a pure optimization.
func (w *worker) encodeResult(res offload.TaskResultFrame) []byte {
	if w.rarena == nil || res.Status != offload.StatusOK || len(res.Payload) < w.zeroCopyMin {
		return offload.EncodeTaskResult(res)
	}
	off, ok := w.rarena.Lease(len(res.Payload))
	if !ok {
		return offload.EncodeTaskResult(res)
	}
	if err := mrapi.RmemWritePadded(w.rarena.Rmem(), w.rnode, off, res.Payload); err != nil {
		w.rarena.Release(off)
		return offload.EncodeTaskResult(res)
	}
	length := uint32(len(res.Payload))
	res.Payload = nil
	hdr := offload.EncodeTaskResult(res)
	desc := offload.EncodeRmemDesc(offload.RmemDescFrame{
		Inner:  offload.KindTaskResult,
		Owner:  uint32(w.id),
		Offset: uint64(off),
		Length: length,
		Header: hdr,
	})
	offload.RecycleFrame(hdr)
	return desc
}

// flush ships encoded frames to the host under sendMu — one batch packet
// when batching is on, one packet per frame otherwise — and recycles
// them. A failed send drops the remaining frames: the host's deadline
// and credit machinery recover, exactly as with unbatched sends.
func (w *worker) flush(frames ...[]byte) {
	w.sendMu.Lock()
	defer w.sendMu.Unlock()
	if w.batch {
		var b offload.Batcher
		for _, fr := range frames {
			b.Add(fr)
		}
		_ = b.Flush(func(pkt []byte) error {
			return w.resSend.Send(pkt, mcapi.TimeoutInfinite)
		})
		return
	}
	for i, fr := range frames {
		err := w.resSend.Send(fr, mcapi.TimeoutInfinite)
		offload.RecycleFrame(fr)
		if err != nil {
			for _, rest := range frames[i+1:] {
				offload.RecycleFrame(rest)
			}
			return
		}
	}
}

// yield answers a steal grant: cancel up to Want still-queued tasks —
// mtapi.Task.Cancel succeeds only before the task starts running, which
// is exactly steal semantics — and hand their frames back to the host,
// followed by a credit report so the host can settle the grant.
func (w *worker) yield(pkt []byte) {
	g, err := offload.DecodeStealGrant(pkt)
	if err != nil {
		return
	}
	var yields []offload.TaskFrame
	w.qmu.Lock()
	for id, qt := range w.queued {
		if len(yields) >= int(g.Want) {
			break
		}
		if qt.mt == nil || qt.mt.Cancel() != nil {
			continue // about to run, or already running
		}
		delete(w.queued, id)
		yields = append(yields, qt.frame)
	}
	credit := offload.CreditFrame{
		Domain:  uint32(w.id),
		Queued:  uint32(len(w.queued)),
		Running: uint32(w.running),
	}
	w.qmu.Unlock()
	if w.killed.Load() {
		return
	}
	frames := make([][]byte, 0, len(yields)+1)
	for _, f := range yields {
		frames = append(frames, offload.EncodeTaskFrame(offload.KindTaskYield, f))
	}
	frames = append(frames, offload.EncodeCredit(credit))
	w.flush(frames...)
}

// dropGroup discards queued tasks of a completed or canceled group.
func (w *worker) dropGroup(pkt []byte) {
	gd, err := offload.DecodeGroupDone(pkt)
	if err != nil {
		return
	}
	w.qmu.Lock()
	for id, qt := range w.queued {
		if qt.frame.Group != gd.Group || qt.mt == nil {
			continue
		}
		if qt.mt.Cancel() != nil {
			continue
		}
		delete(w.queued, id)
	}
	w.qmu.Unlock()
}

// heartbeat answers host pings with pongs, exactly like offload domains:
// non-blocking pong sends, a full host queue just drops the pong.
func (w *worker) heartbeat() {
	defer w.wg.Done()
	for {
		req := mcapi.MsgRecvTI(w.hbEp, mcapi.TimeoutInfinite)
		w.hbReq.Store(req)
		if w.killed.Load() {
			_ = req.Cancel()
		}
		if err := req.Wait(mcapi.TimeoutInfinite); err != nil {
			return
		}
		msg, _, _ := req.Payload()
		ping, err := offload.DecodePing(msg)
		if err != nil {
			continue
		}
		pong := offload.EncodePong(offload.HBFrame{Domain: uint32(w.id), Seq: ping.Seq})
		err = mcapi.MsgSend(w.hbHost, pong, 0, mcapi.TimeoutImmediate)
		offload.RecycleFrame(pong)
		if err != nil {
			if err == mcapi.ErrMemLimit || err == mcapi.ErrTimeout {
				continue // queue full: drop the pong
			}
			return // host endpoint gone
		}
	}
}
