// Package taskfabric distributes MTAPI-style irregular tasks across
// multiple runtime domains — separate core.Runtime instances, each bound
// to its own hypervisor partition of the board — joined only by MCAPI
// packet channels.
//
// The host submits jobs by name; task descriptors travel to worker
// domains as wire frames (internal/offload's task codec), where a local
// MTAPI node schedules them onto the partition's OpenMP runtime. Results,
// queue-occupancy credits and steal yields flow back on the result
// channel. The host brokers work stealing between domains: a domain
// reporting an empty queue is granted half of the most loaded peer's
// unstarted tasks, which migrate as yield frames and re-dispatch to the
// idle domain. Per-task deadlines and retries handle slow domains;
// heartbeat loss detection reclaims a dead domain's in-flight tasks and
// re-executes them locally on the host, so a submitted graph always
// completes — the loss surfaces as an ErrDomainLost-wrapped error
// alongside the full result, mirroring internal/offload.
//
// This completes the paper's MCA trio in load-bearing form: MRAPI under
// each runtime (core.MCALayer), MCAPI as the inter-domain transport, and
// MTAPI as the task-management layer on both sides of the wire.
package taskfabric

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"openmpmca/internal/core"
	"openmpmca/internal/mcapi"
	"openmpmca/internal/mrapi"
	"openmpmca/internal/oerrors"
	"openmpmca/internal/offload"
	"openmpmca/internal/perfmodel"
	"openmpmca/internal/platform"
)

// ErrDomainLost marks work that survived a worker domain dying — the
// result is complete and correct, the lost domain's tasks were
// re-executed — shared with internal/offload so callers handle both
// subsystems with one errors.Is check.
var ErrDomainLost = offload.ErrDomainLost

var (
	// ErrClosed is returned by operations on a closed Fabric.
	// Classified Cancel/fabric_closed.
	ErrClosed = oerrors.Sentinel(oerrors.Cancel, oerrors.CodeFabricClosed,
		"taskfabric: fabric closed")
	// ErrCanceled marks tasks canceled via Group.Cancel. Classified
	// Cancel/task_canceled.
	ErrCanceled = oerrors.Sentinel(oerrors.Cancel, oerrors.CodeTaskCanceled,
		"taskfabric: task canceled")
	// ErrTimeout is returned by bounded waits that expire. Classified
	// Transport/timeout.
	ErrTimeout = oerrors.Sentinel(oerrors.Transport, oerrors.CodeTimeout,
		"taskfabric: timeout")
	// ErrGroupDrained is returned by WaitAny when the group has no
	// outstanding and no undelivered completed tasks. Classified
	// Internal/group_drained.
	ErrGroupDrained = oerrors.Sentinel(oerrors.Internal, oerrors.CodeGroupDrained,
		"taskfabric: group has no outstanding tasks")
)

// TimeoutInfinite waits forever. The wait contract matches
// internal/mtapi: negative waits forever, zero polls once (ErrTimeout if
// not ready), positive bounds the wait.
const TimeoutInfinite time.Duration = -1

// EventSink receives task-fabric trace events. Domain -1 is the host's
// local executor. trace.Recorder implements it.
type EventSink interface {
	TaskSend(domain, task int)
	TaskRecv(domain, task int)
	TaskSteal(thief, victim int)
}

// PeerStealSink is an optional EventSink extension: sinks that also
// implement it receive an event for every direct (peer-to-peer) steal,
// distinct from the TaskSteal event both brokered and direct migrations
// emit. trace.Recorder and spans.Exporter implement it.
type PeerStealSink interface {
	PeerSteal(thief, victim int)
}

// stealMin is the outstanding-task floor below which a domain is not
// worth stealing from.
const stealMin = 2

// config collects the tunables behind the Options.
type config struct {
	domains     int
	board       *platform.Board
	deadline    time.Duration
	retries     int
	heartbeat   time.Duration
	lostAfter   time.Duration
	inflight    int
	mtWorkers   int
	sink        EventSink
	batch       bool
	peerSteal   bool
	zeroCopyMin int
}

// Option configures NewFabric.
type Option func(*config) error

func defaultConfig() config {
	return config{
		domains:     3,
		board:       platform.T4240RDB(),
		deadline:    time.Second,
		retries:     2,
		heartbeat:   20 * time.Millisecond,
		inflight:    8,
		batch:       true,
		peerSteal:   true,
		zeroCopyMin: 4096,
	}
}

// WithDomains sets the number of worker domains (default 3).
func WithDomains(n int) Option {
	return func(c *config) error {
		if n < 1 || n > 64 {
			return fmt.Errorf("%w: taskfabric: WithDomains(%d): want 1..64", core.ErrInvalidOption, n)
		}
		c.domains = n
		return nil
	}
}

// WithBoard selects the simulated board to partition (default T4240RDB).
func WithBoard(b *platform.Board) Option {
	return func(c *config) error {
		if b == nil {
			return fmt.Errorf("%w: taskfabric: WithBoard(nil)", core.ErrInvalidOption)
		}
		c.board = b
		return nil
	}
}

// WithTaskDeadline bounds how long the host waits for a dispatched
// task's result before re-dispatching it (default 1s).
func WithTaskDeadline(d time.Duration) Option {
	return func(c *config) error {
		if d <= 0 {
			return fmt.Errorf("%w: taskfabric: WithTaskDeadline(%v): want > 0", core.ErrInvalidOption, d)
		}
		c.deadline = d
		return nil
	}
}

// WithRetries sets how many re-dispatches a task gets before it is
// pinned to local execution (default 2).
func WithRetries(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("%w: taskfabric: WithRetries(%d): want >= 0", core.ErrInvalidOption, n)
		}
		c.retries = n
		return nil
	}
}

// WithHeartbeat sets the ping period; a domain missing pongs for eight
// periods is declared lost (default 20ms).
func WithHeartbeat(period time.Duration) Option {
	return func(c *config) error {
		if period <= 0 {
			return fmt.Errorf("%w: taskfabric: WithHeartbeat(%v): want > 0", core.ErrInvalidOption, period)
		}
		c.heartbeat = period
		return nil
	}
}

// WithInflight sets how many task descriptors may be in flight to one
// domain at a time (default 8).
func WithInflight(n int) Option {
	return func(c *config) error {
		if n < 1 || n > 64 {
			return fmt.Errorf("%w: taskfabric: WithInflight(%d): want 1..64", core.ErrInvalidOption, n)
		}
		c.inflight = n
		return nil
	}
}

// WithDomainWorkers sets each domain's MTAPI scheduler pool size;
// 0 (the default) uses the partition's hardware threads, capped at 4.
func WithDomainWorkers(n int) Option {
	return func(c *config) error {
		if n < 0 || n > 64 {
			return fmt.Errorf("%w: taskfabric: WithDomainWorkers(%d): want 0..64", core.ErrInvalidOption, n)
		}
		c.mtWorkers = n
		return nil
	}
}

// WithBatching toggles frame coalescing: when on (the default), a pump
// that dispatches several tasks to one domain sends them as a single
// batch packet, and workers likewise coalesce their result, credit and
// yield frames per flush. Off restores one-packet-per-frame as an
// ablation baseline for benchmarks.
func WithBatching(on bool) Option {
	return func(c *config) error {
		c.batch = on
		return nil
	}
}

// WithPeerStealing toggles the direct worker-to-worker steal mesh
// (default on). When on, BuildNet wires N×(N−1) peer packet channels
// and an idle domain sends its steal request straight to the most
// loaded victim, falling back to host brokerage only when the peer path
// is dead. Off restores the host-brokered-only protocol byte-for-byte —
// the ablation baseline.
func WithPeerStealing(on bool) Option {
	return func(c *config) error {
		c.peerSteal = on
		return nil
	}
}

// WithZeroCopyThreshold sets the payload size (bytes) above which task
// arguments and results travel through MRAPI remote-memory windows
// instead of inline in frames, with the frame carrying only an
// (owner, offset, len) descriptor. n <= 0 disables the zero-copy plane
// entirely. Default 4096.
func WithZeroCopyThreshold(n int) Option {
	return func(c *config) error {
		c.zeroCopyMin = n
		return nil
	}
}

// WithEventSink installs a sink for EvTaskSend/EvTaskRecv/EvTaskSteal
// events.
func WithEventSink(s EventSink) Option {
	return func(c *config) error {
		c.sink = s
		return nil
	}
}

// counters are the Fabric's monotonically increasing stats.
type counters struct {
	submitted         atomic.Uint64
	remoteTasks       atomic.Uint64
	localTasks        atomic.Uint64
	resends           atomic.Uint64
	steals            atomic.Uint64
	peerSteals        atomic.Uint64
	brokeredFallbacks atomic.Uint64
	rmemBytesMoved    atomic.Uint64
	canceled          atomic.Uint64
	domainsLost       atomic.Uint64
	readmissions      atomic.Uint64
	heartbeats        atomic.Uint64
	pingDrops         atomic.Uint64
}

// Stats is a point-in-time copy of the fabric counters. It is
// JSON-taggable: it serializes as the "fabric" section of the unified
// openmpmca.Snapshot.
type Stats struct {
	Submitted         uint64 `json:"submitted"`          // tasks accepted by SubmitJob
	RemoteTasks       uint64 `json:"remote_tasks"`       // tasks completed by worker domains
	LocalTasks        uint64 `json:"local_tasks"`        // tasks completed by the host's local executor
	Resends           uint64 `json:"resends"`            // task re-dispatches (deadline or domain loss)
	Steals            uint64 `json:"steals"`             // queued tasks migrated between domains (any path)
	PeerSteals        uint64 `json:"peer_steals"`        // steals completed over direct peer channels
	BrokeredFallbacks uint64 `json:"brokered_fallbacks"` // peer-steal attempts that fell back to host brokerage
	RmemBytesMoved    uint64 `json:"rmem_bytes_moved"`   // payload bytes staged through MRAPI windows
	Canceled          uint64 `json:"canceled"`           // tasks canceled via Group.Cancel
	DomainsLost       uint64 `json:"domains_lost"`       // worker domains declared dead
	Readmissions      uint64 `json:"readmissions"`       // lost domains readmitted after restart
	Heartbeats        uint64 `json:"heartbeats"`         // pongs received
	PingDrops         uint64 `json:"ping_drops"`         // pings dropped by a full send queue
}

// TaskHandle tracks one submitted task. Waiters may call Wait from any
// goroutine.
type TaskHandle struct {
	id  uint64
	job string

	done chan struct{}
	mu   sync.Mutex
	fin  bool
	res  []byte
	err  error
}

// ID returns the fabric-wide task ID.
func (h *TaskHandle) ID() uint64 { return h.id }

// Job returns the job name the task executes.
func (h *TaskHandle) Job() string { return h.job }

func (h *TaskHandle) finish(res []byte, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.fin {
		return
	}
	h.fin = true
	h.res = res
	h.err = err
	close(h.done)
}

func (h *TaskHandle) errOf() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.err
}

// Wait blocks up to timeout for the task's result, under the package
// timeout contract. A task recovered from a lost domain returns its
// (valid) result together with an ErrDomainLost-wrapped error.
func (h *TaskHandle) Wait(timeout time.Duration) ([]byte, error) {
	switch {
	case timeout < 0:
		<-h.done
	case timeout == 0:
		select {
		case <-h.done:
		default:
			return nil, ErrTimeout
		}
	default:
		t := time.NewTimer(timeout)
		defer t.Stop()
		select {
		case <-h.done:
		case <-t.C:
			return nil, ErrTimeout
		}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.res, h.err
}

// task is the scheduler's record of one submitted task.
type task struct {
	id          uint64
	job         string
	arg         []byte
	h           *TaskHandle
	g           *Group
	attempt     uint32
	forcedLocal bool // exhausted retries or recovered: host executes it
	recovered   bool // reclaimed from a lost domain

	// Loss provenance, captured when the task is reclaimed from a dead
	// domain so the surfaced error names the domain and its silence.
	lostDom     int
	lostName    string
	lostSilence time.Duration

	// Zero-copy staging: when the argument was written into the host's
	// MRAPI window at submit, frames carry only a descriptor and the
	// lease is held (the window is the wire's copy; t.arg stays the
	// host's local copy for retries and loss recovery) until settle.
	staged  bool
	rmemOff int
}

// flight tracks one dispatched task: which executor has it, when it was
// dispatched and when the host gives up waiting. Local flights (dom -1)
// have no deadline.
type flight struct {
	dom    int
	sent   time.Time
	expiry time.Time
}

// arrival is one raw packet handed from a link receiver to the scheduler.
type arrival struct {
	dom int
	pkt []byte
}

// localDone is one task completed by the host's local executor.
type localDone struct {
	t       *task
	payload []byte
	err     error
}

// rmemResult is one remote task result whose payload was staged in a
// worker's MRAPI window: a reader goroutine pulled the payload off the
// window (keeping the multi-millisecond DMA wait out of the scheduler
// loop) and hands the completed frame back in.
type rmemResult struct {
	dom int
	m   offload.TaskResultFrame
	ok  bool // read succeeded; false just clears the in-flight mark
}

// hostLink is the host's view of one worker domain. occ mirrors the
// scheduler's outstanding-task count for this domain (the scheduler
// goroutine is the only writer; introspection surfaces such as
// DomainInfos read it atomically), and ewma folds in observed
// dispatch-to-result service times per completed remote task.
type hostLink struct {
	w      *worker
	name   string
	cpus   int
	cmd    *mcapi.PktSendHandle
	res    *mcapi.PktRecvHandle
	hbTo   *mcapi.Endpoint
	hbFrom *mcapi.Endpoint
	health *offload.HealthState
	occ    atomic.Int64
	ewma   *perfmodel.ServiceEWMA
}

// Fabric owns a partitioned board: one host runtime plus N worker
// domains, joined only by MCAPI, executing MTAPI-style jobs. It is safe
// for concurrent use.
type Fabric struct {
	cfg   config
	reg   *Registry
	net   *offload.Net
	plane *rmemPlane // zero-copy interconnect; nil when disabled

	workers []*worker
	links   []*hostLink

	submitCh    chan *task
	arrCh       chan arrival
	localQ      chan *task
	localDoneCh chan localDone
	rmemResCh   chan rmemResult
	lostCh      chan int
	cancelCh    chan *Group
	stopCh      chan struct{}
	wg          sync.WaitGroup

	idSeq    atomic.Uint64
	groupSeq atomic.Uint64
	closed   atomic.Bool
	st       counters
}

// NewFabric partitions the configured board, boots the host and worker
// runtimes, wires the MCAPI fabric, starts each domain's MTAPI node and
// the host's scheduler, receivers and health monitor.
func NewFabric(reg *Registry, opts ...Option) (*Fabric, error) {
	if reg == nil {
		return nil, fmt.Errorf("%w: taskfabric: nil registry", core.ErrInvalidOption)
	}
	cfg := defaultConfig()
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	cfg.lostAfter = 8 * cfg.heartbeat

	net, err := offload.BuildNet(offload.NetConfig{
		Domains:    cfg.domains,
		Board:      cfg.board,
		NamePrefix: "fabric",
		CmdDepth:   cfg.inflight + 4,
		ResDepth:   cfg.inflight + 4,
		Mesh:       cfg.peerSteal && cfg.domains >= 2,
		PeerDepth:  cfg.inflight + 4,
	})
	if err != nil {
		return nil, err
	}

	f := &Fabric{
		cfg:         cfg,
		reg:         reg,
		net:         net,
		submitCh:    make(chan *task),
		arrCh:       make(chan arrival, 64),
		localQ:      make(chan *task, 4),
		localDoneCh: make(chan localDone),
		rmemResCh:   make(chan rmemResult, 16),
		lostCh:      make(chan int, cfg.domains),
		cancelCh:    make(chan *Group),
		stopCh:      make(chan struct{}),
	}
	if cfg.zeroCopyMin > 0 {
		plane, perr := newRmemPlane(cfg.domains)
		if perr != nil {
			_ = f.teardownNet()
			return nil, perr
		}
		f.plane = plane
	}
	now := time.Now().UnixNano()
	for _, nl := range net.Links {
		mtWorkers := cfg.mtWorkers
		if mtWorkers == 0 {
			mtWorkers = nl.CPUs
			if mtWorkers > 4 {
				mtWorkers = 4
			}
		}
		w, werr := newWorker(nl, reg, mtWorkers, &cfg, f.plane)
		if werr != nil {
			_ = f.teardownNet()
			return nil, werr
		}
		h := &offload.HealthState{}
		h.RecordPong(now)
		f.workers = append(f.workers, w)
		f.links = append(f.links, &hostLink{
			w:      w,
			name:   nl.Name,
			cpus:   nl.CPUs,
			cmd:    nl.CmdSend,
			res:    nl.ResRecv,
			hbTo:   nl.HBEp,
			hbFrom: nl.HBHost,
			health: h,
			ewma:   perfmodel.NewServiceEWMA(perfmodel.DefaultEWMAAlpha),
		})
	}
	for _, w := range f.workers {
		w.start()
	}
	f.wg.Add(3 + len(f.links))
	go f.scheduler()
	go f.localExec()
	go f.healthLoop()
	for i := range f.links {
		go f.receiver(i)
	}
	return f, nil
}

// teardownNet releases a partially built fabric before any goroutines
// started.
func (f *Fabric) teardownNet() error {
	for _, w := range f.workers {
		w.mt.Shutdown()
	}
	err := f.net.Host.Close()
	for _, nl := range f.net.Links {
		_ = nl.RT.Close()
	}
	for _, p := range f.net.HV.Partitions() {
		_ = f.net.HV.Stop(p.Name)
	}
	return err
}

// Domains reports the number of worker domains.
func (f *Fabric) Domains() int { return len(f.links) }

// Board returns the partitioned board.
func (f *Fabric) Board() *platform.Board { return f.cfg.board }

// Render describes the hypervisor partitioning.
func (f *Fabric) Render() string { return f.net.HV.Render() }

// Stats snapshots the fabric counters.
func (f *Fabric) Stats() Stats {
	return Stats{
		Submitted:         f.st.submitted.Load(),
		RemoteTasks:       f.st.remoteTasks.Load(),
		LocalTasks:        f.st.localTasks.Load(),
		Resends:           f.st.resends.Load(),
		Steals:            f.st.steals.Load(),
		PeerSteals:        f.st.peerSteals.Load(),
		BrokeredFallbacks: f.st.brokeredFallbacks.Load(),
		RmemBytesMoved:    f.st.rmemBytesMoved.Load(),
		Canceled:          f.st.canceled.Load(),
		DomainsLost:       f.st.domainsLost.Load(),
		Readmissions:      f.st.readmissions.Load(),
		Heartbeats:        f.st.heartbeats.Load(),
		PingDrops:         f.st.pingDrops.Load(),
	}
}

// DomainInfo describes one worker domain for introspection surfaces (the
// job service's GET /v1/domains): identity, liveness, the tasks
// currently outstanding on it, and the EWMA of observed
// dispatch-to-result service times.
type DomainInfo struct {
	ID          int     `json:"id"`   // 0-based link index
	Name        string  `json:"name"` // hypervisor partition name
	CPUs        int     `json:"cpus"`
	Live        bool    `json:"live"`
	Outstanding int     `json:"outstanding"`  // tasks dispatched, result pending
	EWMATaskNs  float64 `json:"ewma_task_ns"` // observed ns per remote task, 0 until primed
	EWMASamples uint64  `json:"ewma_samples"`
}

// DomainInfos snapshots every worker domain's identity, liveness,
// occupancy and adaptive service estimate.
func (f *Fabric) DomainInfos() []DomainInfo {
	out := make([]DomainInfo, len(f.links))
	for i, l := range f.links {
		ns, _ := l.ewma.Value()
		out[i] = DomainInfo{
			ID:          i,
			Name:        l.name,
			CPUs:        l.cpus,
			Live:        !l.health.Lost(),
			Outstanding: int(l.occ.Load()),
			EWMATaskNs:  ns,
			EWMASamples: l.ewma.Samples(),
		}
	}
	return out
}

// HostStats snapshots the host runtime's scheduler counters.
func (f *Fabric) HostStats() core.StatsSnapshot {
	return f.net.Host.Stats().Snapshot()
}

// KillDomain crash-tests worker domain i (0-based): its service loops
// die and the host must recover via missed heartbeats.
func (f *Fabric) KillDomain(i int) error {
	if i < 0 || i >= len(f.workers) {
		return oerrors.Errorf(oerrors.Admission, oerrors.CodeInvalidOption, "taskfabric: no domain %d", i)
	}
	f.workers[i].Kill()
	return nil
}

// ReadmitDomain returns a lost (and since restarted) domain to service,
// along the same path as offload.Offloader.ReadmitDomain: restart the
// worker's service loops, then clear the health record so the monitor
// resumes pinging it. Only a lost domain can be readmitted.
func (f *Fabric) ReadmitDomain(i int) error {
	if f.closed.Load() {
		return ErrClosed
	}
	if i < 0 || i >= len(f.links) {
		return oerrors.Errorf(oerrors.Admission, oerrors.CodeInvalidOption, "taskfabric: no domain %d", i)
	}
	l := f.links[i]
	if !l.health.Lost() {
		return oerrors.Errorf(oerrors.Domain, oerrors.CodeReadmit, "taskfabric: domain %s is not lost", l.w.name)
	}
	l.w.restart()
	if !l.health.Readmit(time.Now().UnixNano()) {
		return oerrors.Errorf(oerrors.Domain, oerrors.CodeReadmit, "taskfabric: domain %s readmitted concurrently", l.w.name)
	}
	f.st.readmissions.Add(1)
	return nil
}

// SubmitJob submits one ungrouped task executing the named job with the
// given argument, dispatched to whichever domain has capacity.
func (f *Fabric) SubmitJob(job string, arg []byte) (*TaskHandle, error) {
	return f.submit(job, arg, nil)
}

func (f *Fabric) submit(job string, arg []byte, g *Group) (*TaskHandle, error) {
	if f.closed.Load() {
		return nil, ErrClosed
	}
	if _, ok := f.reg.Lookup(job); !ok {
		return nil, oerrors.Errorf(oerrors.Internal, oerrors.CodeUnknownJob, "taskfabric: unknown job %q", job)
	}
	id := f.idSeq.Add(1)
	h := &TaskHandle{id: id, job: job, done: make(chan struct{})}
	t := &task{id: id, job: job, arg: append([]byte(nil), arg...), h: h, g: g}
	if f.plane != nil && len(t.arg) >= f.cfg.zeroCopyMin {
		// Stage the bulk argument into the host's MRAPI window on the
		// submitter's goroutine, keeping the DMA wait off the scheduler.
		// A full arena just means this task ships inline.
		if off, ok := f.plane.arenas[0].Lease(len(t.arg)); ok {
			if mrapi.RmemWritePadded(f.plane.windows[0], f.plane.host, off, t.arg) == nil {
				t.staged, t.rmemOff = true, off
				f.st.rmemBytesMoved.Add(uint64(len(t.arg)))
			} else {
				f.plane.arenas[0].Release(off)
			}
		}
	}
	if g != nil {
		g.addMember(h)
	}
	select {
	case f.submitCh <- t:
	case <-f.stopCh:
		if g != nil {
			g.dropMember(h)
		}
		return nil, ErrClosed
	}
	f.st.submitted.Add(1)
	return h, nil
}

// receiver drains one link's result channel into the scheduler.
func (f *Fabric) receiver(i int) {
	defer f.wg.Done()
	l := f.links[i]
	for {
		pkt, err := l.res.Recv(mcapi.TimeoutInfinite)
		if err != nil {
			return
		}
		select {
		case f.arrCh <- arrival{dom: i, pkt: pkt}:
		case <-f.stopCh:
			return
		}
	}
}

// localExec is the host's executor for tasks pinned local — recovered
// from a lost domain, out of retries, or with no live domain to go to.
func (f *Fabric) localExec() {
	defer f.wg.Done()
	for {
		select {
		case <-f.stopCh:
			return
		case t := <-f.localQ:
			var payload []byte
			var err error
			if job, ok := f.reg.Lookup(t.job); !ok {
				err = oerrors.Errorf(oerrors.Internal, oerrors.CodeUnknownJob, "taskfabric: unknown job %q", t.job)
			} else {
				payload, err = job.Execute(f.net.Host, t.arg)
			}
			select {
			case f.localDoneCh <- localDone{t: t, payload: payload, err: err}:
			case <-f.stopCh:
				return
			}
		}
	}
}

// healthLoop runs the shared heartbeat monitor (internal/offload) over
// the links; a lost domain is killed and reported to the scheduler for
// task reclamation.
func (f *Fabric) healthLoop() {
	defer f.wg.Done()
	peers := make([]offload.HealthPeer, len(f.links))
	for i, l := range f.links {
		peers[i] = offload.HealthPeer{ID: l.w.id, State: l.health, PingTo: l.hbTo, PongFrom: l.hbFrom}
	}
	offload.MonitorHealth(f.stopCh, f.cfg.heartbeat, f.cfg.lostAfter, peers,
		func(i int) {
			f.st.domainsLost.Add(1)
			f.links[i].w.Kill()
			select {
			case f.lostCh <- i:
			default:
			}
		},
		func() { f.st.heartbeats.Add(1) },
		func() { f.st.pingDrops.Add(1) })
}

// scheduler is the single goroutine owning all dispatch state: the
// pending queue, the in-flight table, per-domain occupancy and the
// active steal grant. Everything else talks to it over channels.
func (f *Fabric) scheduler() {
	defer f.wg.Done()
	var (
		pending     []*task
		tasks       = make(map[uint64]*task)
		infl        = make(map[uint64]flight)
		grantVictim = -1
		grantThief  = -1
		rmemReads   = make(map[uint64]struct{}) // window reads in flight, by task
	)
	// Per-domain outstanding counts live on the links as atomics so
	// DomainInfos can snapshot them; the scheduler is the only writer.
	occ := func(li int) int { return int(f.links[li].occ.Load()) }
	clearGrant := func() { grantVictim, grantThief = -1, -1 }
	live := func(li int) bool { return !f.links[li].health.Lost() }
	anyLive := func() bool {
		for li := range f.links {
			if live(li) {
				return true
			}
		}
		return false
	}

	// finish completes a task: release its flight slot and any staged
	// window lease, settle the handle (a recovered task's success
	// carries ErrDomainLost), notify its group.
	finish := func(t *task, payload []byte, err error) {
		delete(tasks, t.id)
		if fl, ok := infl[t.id]; ok {
			delete(infl, t.id)
			if fl.dom >= 0 {
				f.links[fl.dom].occ.Add(-1)
				if !fl.sent.IsZero() {
					f.links[fl.dom].ewma.Observe(float64(time.Since(fl.sent)))
				}
			}
		}
		if t.staged {
			f.plane.arenas[0].Release(t.rmemOff)
			t.staged = false
		}
		if err == nil && t.recovered {
			err = oerrors.DomainLost(ErrDomainLost, "taskfabric",
				t.lostDom, t.lostName, t.lostSilence,
				fmt.Sprintf("task %d re-executed elsewhere", t.id))
		}
		t.h.finish(payload, err)
		if t.g != nil {
			t.g.taskDone(t.h)
		}
	}

	// encodeTask builds one task descriptor frame. A staged task ships
	// as an rmem descriptor wrapping an argument-less header: the bytes
	// stay in the host's window and the worker DMAs them out at
	// execution time.
	encodeTask := func(t *task) []byte {
		var gid uint64
		if t.g != nil {
			gid = t.g.id
		}
		fr := offload.TaskFrame{
			Task: t.id, Attempt: t.attempt, Group: gid, Job: t.job, Arg: t.arg,
		}
		if t.staged {
			fr.Arg = nil
			hdr := offload.EncodeTaskFrame(offload.KindTask, fr)
			pkt := offload.EncodeRmemDesc(offload.RmemDescFrame{
				Inner:  offload.KindTask,
				Owner:  0,
				Offset: uint64(t.rmemOff),
				Length: uint32(len(t.arg)),
				Header: hdr,
			})
			offload.RecycleFrame(hdr)
			return pkt
		}
		return offload.EncodeTaskFrame(offload.KindTask, fr)
	}

	// commitRemote records a successful dispatch of t to domain li.
	commitRemote := func(t *task, li int) {
		now := time.Now()
		infl[t.id] = flight{dom: li, sent: now, expiry: now.Add(f.cfg.deadline)}
		f.links[li].occ.Add(1)
		if f.cfg.sink != nil {
			f.cfg.sink.TaskSend(li, int(t.id))
		}
	}

	// dispatch places one task: pinned-local tasks (and tasks with no
	// live domain) go to the host executor, the rest to the live domain
	// with the fewest tasks in flight. False means try again later.
	dispatch := func(t *task) bool {
		if t.forcedLocal || !anyLive() {
			select {
			case f.localQ <- t:
				infl[t.id] = flight{dom: -1}
				if f.cfg.sink != nil {
					f.cfg.sink.TaskSend(-1, int(t.id))
				}
				return true
			default:
				return false // local executor saturated
			}
		}
		best := -1
		for li := range f.links {
			if !live(li) || occ(li) >= f.cfg.inflight {
				continue
			}
			if best < 0 || occ(li) < occ(best) {
				best = li
			}
		}
		if best < 0 {
			return false
		}
		frame := encodeTask(t)
		err := f.links[best].cmd.Send(frame, mcapi.TimeoutImmediate)
		offload.RecycleFrame(frame)
		if err != nil {
			return false // command queue full; the tick retries
		}
		commitRemote(t, best)
		return true
	}

	pump := func() {
		var rest []*task
		if !f.cfg.batch {
			// Ablation baseline: one packet per task.
			for _, t := range pending {
				if _, alive := tasks[t.id]; !alive {
					continue // finished or canceled while queued
				}
				if !dispatch(t) {
					rest = append(rest, t)
				}
			}
			pending = rest
			return
		}
		// Plan the whole queue first — min-occupancy placement using
		// this round's tentative assignments (extra) on top of what is
		// already in flight — then flush each domain's plan as one
		// batch packet. A failed flush commits nothing for that domain;
		// its tasks go back in the queue for the tick to retry.
		extra := make([]int, len(f.links))
		plans := make([][]*task, len(f.links))
		for _, t := range pending {
			if _, alive := tasks[t.id]; !alive {
				continue // finished or canceled while queued
			}
			if t.forcedLocal || !anyLive() {
				select {
				case f.localQ <- t:
					infl[t.id] = flight{dom: -1}
					if f.cfg.sink != nil {
						f.cfg.sink.TaskSend(-1, int(t.id))
					}
				default:
					rest = append(rest, t) // local executor saturated
				}
				continue
			}
			best := -1
			for li := range f.links {
				if !live(li) || occ(li)+extra[li] >= f.cfg.inflight {
					continue
				}
				if best < 0 || occ(li)+extra[li] < occ(best)+extra[best] {
					best = li
				}
			}
			if best < 0 {
				rest = append(rest, t)
				continue
			}
			extra[best]++
			plans[best] = append(plans[best], t)
		}
		for li, plan := range plans {
			if len(plan) == 0 {
				continue
			}
			var b offload.Batcher
			for _, t := range plan {
				b.Add(encodeTask(t))
			}
			if b.Flush(func(pkt []byte) error {
				return f.links[li].cmd.Send(pkt, mcapi.TimeoutImmediate)
			}) != nil {
				rest = append(rest, plan...)
				continue
			}
			for _, t := range plan {
				commitRemote(t, li)
			}
		}
		pending = rest
	}

	// reclaim pulls a task back from a failed dispatch for another try;
	// past the retry budget (or after domain loss) it pins local.
	reclaim := func(t *task, toLocal bool) {
		t.attempt++
		f.st.resends.Add(1)
		if toLocal || int(t.attempt) > f.cfg.retries {
			t.forcedLocal = true
		}
		pending = append(pending, t)
	}

	// tryGrant runs the host-brokered steal protocol on behalf of an
	// idle thief domain: grant the most loaded live victim permission to
	// yield half its queue. Shared by the classic credit trigger (peer
	// stealing off) and the peer-mesh fallback path.
	tryGrant := func(thief int) {
		if occ(thief) != 0 || len(pending) != 0 || grantVictim >= 0 || !live(thief) {
			return
		}
		victim := -1
		for li := range f.links {
			if li == thief || !live(li) || occ(li) < stealMin {
				continue
			}
			if victim < 0 || occ(li) > occ(victim) {
				victim = li
			}
		}
		if victim < 0 {
			return
		}
		grant := offload.EncodeStealGrant(offload.StealGrantFrame{
			Want: uint32(occ(victim) / 2),
		})
		err := f.links[victim].cmd.Send(grant, mcapi.TimeoutImmediate)
		offload.RecycleFrame(grant)
		if err == nil {
			grantVictim, grantThief = victim, thief
		}
	}

	// finishResult settles one decoded remote result, shared by the
	// inline path and the window-staged path.
	finishResult := func(dom int, m offload.TaskResultFrame) bool {
		t, known := tasks[m.Task]
		if !known {
			return false // duplicate or stale: already settled
		}
		var terr error
		switch m.Status {
		case offload.StatusUnknownJob:
			terr = oerrors.Errorf(oerrors.Internal, oerrors.CodeUnknownJob, "taskfabric: domain %d: unknown job %q", dom, string(m.Payload))
		case offload.StatusJobError:
			terr = oerrors.Errorf(oerrors.Internal, oerrors.CodeJobFailed, "taskfabric: job %q: %s", t.job, string(m.Payload))
		}
		f.st.remoteTasks.Add(1)
		if f.cfg.sink != nil {
			f.cfg.sink.TaskRecv(dom, int(t.id))
		}
		finish(t, m.Payload, terr)
		return true
	}

	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()

	for {
		select {
		case <-f.stopCh:
			for _, t := range tasks {
				if t.staged {
					f.plane.arenas[0].Release(t.rmemOff)
					t.staged = false
				}
				t.h.finish(nil, ErrClosed)
				if t.g != nil {
					t.g.taskDone(t.h)
				}
			}
			return

		case t := <-f.submitCh:
			tasks[t.id] = t
			pending = append(pending, t)
			pump()

		case a := <-f.arrCh:
			// handleFrame processes one unwrapped frame from domain
			// a.dom, reporting whether dispatch state changed (the
			// caller pumps once after the whole packet). Decodes are
			// zero-copy: the scheduler owns each delivered packet
			// exclusively and never recycles it, so payloads may alias.
			handleFrame := func(pkt []byte) bool {
				kind, ok := offload.FrameKind(pkt)
				if !ok {
					return false
				}
				switch kind {
				case offload.KindTaskResult:
					m, err := offload.DecodeTaskResultShared(pkt)
					if err != nil {
						return false
					}
					return finishResult(a.dom, m)
				case offload.KindTaskYield:
					m, err := offload.DecodeTaskFrameShared(offload.KindTaskYield, pkt)
					if err != nil {
						return false
					}
					t, known := tasks[m.Task]
					if !known {
						return false
					}
					fl, ok := infl[t.id]
					if !ok || fl.dom != a.dom {
						return false
					}
					delete(infl, t.id)
					f.links[a.dom].occ.Add(-1)
					t.attempt++
					f.st.steals.Add(1)
					if f.cfg.sink != nil {
						thief := -1
						if grantVictim == a.dom {
							thief = grantThief
						}
						f.cfg.sink.TaskSteal(thief, a.dom)
					}
					// Head of the queue: the idle thief has the lowest
					// occupancy, so min-outstanding dispatch routes the
					// migrated task straight to it.
					pending = append([]*task{t}, pending...)
					return true
				case offload.KindCredit:
					m, err := offload.DecodeCredit(pkt)
					if err != nil {
						return false
					}
					if grantVictim == a.dom {
						clearGrant() // grant settled: victim reported back
					}
					// With peer stealing on, idle domains drive their own
					// steals over the mesh; the host only brokers when a
					// worker explicitly falls back (KindPeerSteal below).
					if !f.cfg.peerSteal && m.Queued == 0 && m.Running == 0 {
						tryGrant(a.dom)
					}
				case offload.KindPeerSteal:
					// A thief's peer path is dead or went unanswered: it
					// asks the host to broker the steal the classic way.
					if _, err := offload.DecodePeerSteal(pkt); err != nil {
						return false
					}
					f.st.brokeredFallbacks.Add(1)
					tryGrant(a.dom)
				case offload.KindStealMoved:
					m, err := offload.DecodeStealMoved(pkt)
					if err != nil {
						return false
					}
					// Re-point the flight from victim to thief so deadlines,
					// occupancy and loss recovery follow the task to its new
					// executor. Stale moves (task settled, reclaimed, or
					// already re-dispatched) are ignored: the eventual
					// duplicate result is dropped by the settle check.
					victimLi := int(m.Victim) - 1
					thiefLi := a.dom
					if victimLi < 0 || victimLi >= len(f.links) {
						return false
					}
					fl, ok := infl[m.Task]
					if !ok || fl.dom != victimLi {
						return false
					}
					if _, known := tasks[m.Task]; !known {
						return false
					}
					now := time.Now()
					infl[m.Task] = flight{dom: thiefLi, sent: now, expiry: now.Add(f.cfg.deadline)}
					f.links[victimLi].occ.Add(-1)
					f.links[thiefLi].occ.Add(1)
					f.st.steals.Add(1)
					f.st.peerSteals.Add(1)
					if f.cfg.sink != nil {
						f.cfg.sink.TaskSteal(thiefLi, victimLi)
						if ps, ok := f.cfg.sink.(PeerStealSink); ok {
							ps.PeerSteal(thiefLi, victimLi)
						}
					}
					return true
				case offload.KindRmemDesc:
					d, err := offload.DecodeRmemDescShared(pkt)
					if err != nil || d.Inner != offload.KindTaskResult || f.plane == nil {
						return false
					}
					m, err := offload.DecodeTaskResult(d.Header)
					if err != nil || int(d.Owner) >= len(f.plane.windows) {
						return false
					}
					if _, known := tasks[m.Task]; !known {
						// Already settled: no read, but still ack so the
						// worker's arena slot recycles promptly.
						f.ackRmem(d)
						return false
					}
					if _, busy := rmemReads[m.Task]; busy {
						return false // duplicate descriptor; first read wins
					}
					rmemReads[m.Task] = struct{}{}
					go f.readRmemResult(a.dom, m, d.Owner, d.Offset, d.Length)
				}
				return false
			}
			needPump := false
			if offload.IsBatch(a.pkt) {
				if frames, err := offload.DecodeBatch(a.pkt); err == nil {
					for _, fr := range frames {
						if handleFrame(fr) {
							needPump = true
						}
					}
				}
			} else if handleFrame(a.pkt) {
				needPump = true
			}
			if needPump {
				pump()
			}

		case d := <-f.localDoneCh:
			if _, known := tasks[d.t.id]; !known {
				continue
			}
			f.st.localTasks.Add(1)
			if f.cfg.sink != nil {
				f.cfg.sink.TaskRecv(-1, int(d.t.id))
			}
			finish(d.t, d.payload, d.err)
			pump()

		case r := <-f.rmemResCh:
			delete(rmemReads, r.m.Task)
			if r.ok && finishResult(r.dom, r.m) {
				pump()
			}

		case li := <-f.lostCh:
			ll := f.links[li]
			silence := ll.health.Silence()
			for id, fl := range infl {
				if fl.dom != li {
					continue
				}
				delete(infl, id)
				t, known := tasks[id]
				if !known {
					continue
				}
				t.recovered = true
				t.lostDom = ll.w.id
				t.lostName = ll.name
				t.lostSilence = silence
				reclaim(t, true)
			}
			f.links[li].occ.Store(0)
			if grantVictim == li || grantThief == li {
				clearGrant()
			}
			pump()

		case g := <-f.cancelCh:
			for id, t := range tasks {
				if t.g != g {
					continue
				}
				delete(tasks, id)
				if fl, ok := infl[id]; ok {
					delete(infl, id)
					if fl.dom >= 0 {
						f.links[fl.dom].occ.Add(-1)
					}
				}
				if t.staged {
					f.plane.arenas[0].Release(t.rmemOff)
					t.staged = false
				}
				f.st.canceled.Add(1)
				t.h.finish(nil, ErrCanceled)
				g.taskDone(t.h)
			}
			done := offload.EncodeGroupDone(offload.GroupDoneFrame{Group: g.id})
			for li := range f.links {
				if live(li) {
					_ = f.links[li].cmd.Send(done, mcapi.TimeoutImmediate)
				}
			}
			offload.RecycleFrame(done)

		case <-tick.C:
			now := time.Now()
			for id, fl := range infl {
				if fl.dom < 0 || fl.expiry.After(now) {
					continue
				}
				delete(infl, id)
				f.links[fl.dom].occ.Add(-1)
				t, known := tasks[id]
				if !known {
					continue
				}
				reclaim(t, false)
			}
			pump()
			if f.cfg.peerSteal && len(f.links) >= 2 {
				// Broadcast the occupancy snapshot the mesh steals from.
				lm := offload.LoadMapFrame{Occ: make([]uint32, len(f.links))}
				for li := range f.links {
					lm.Occ[li] = uint32(occ(li))
				}
				pkt := offload.EncodeLoadMap(lm)
				for li := range f.links {
					if live(li) {
						_ = f.links[li].cmd.Send(pkt, mcapi.TimeoutImmediate)
					}
				}
				offload.RecycleFrame(pkt)
			}
		}
	}
}

// Close shuts the fabric down: outstanding tasks settle with ErrClosed,
// workers get a best-effort shutdown frame, the host's endpoints are
// finalized first (waking blocked worker sends), then each domain stops
// and the host runtime closes. Idempotent.
func (f *Fabric) Close() error {
	if !f.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(f.stopCh)
	shut := offload.EncodeFabricShutdown()
	for _, l := range f.links {
		if !l.health.Lost() {
			_ = l.cmd.Send(shut, mcapi.TimeoutImmediate)
		}
	}
	offload.RecycleFrame(shut)
	_ = f.net.HostNode.Finalize()
	for _, w := range f.workers {
		w.stop()
	}
	f.wg.Wait()
	err := f.net.Host.Close()
	for _, p := range f.net.HV.Partitions() {
		_ = f.net.HV.Stop(p.Name)
	}
	return err
}

// EstimateDomainNs exposes the perfmodel estimate for one task running n
// units on domain li's partition — a planning aid for demos sizing
// irregular graphs; the scheduler itself balances by occupancy.
func (f *Fabric) EstimateDomainNs(li int, prof perfmodel.KernelProfile, units float64) (float64, error) {
	if li < 0 || li >= len(f.net.Links) {
		return 0, oerrors.Errorf(oerrors.Admission, oerrors.CodeInvalidOption, "taskfabric: no domain %d", li)
	}
	return perfmodel.EstimateRegionNs(f.cfg.board, prof, f.net.Links[li].CPUs, units), nil
}
