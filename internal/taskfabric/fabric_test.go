package taskfabric

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"openmpmca/internal/core"
	"openmpmca/internal/trace"
)

// trace.Recorder must satisfy EventSink so fabric events land in the
// same ring as runtime and offload events.
var _ EventSink = (*trace.Recorder)(nil)

// sleepSumArg encodes "sleep ms, then return v": the irregular-duration
// workload the scheduler and the stealing logic are exercised with.
func sleepSumArg(ms uint32, v uint64) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, ms)
	return binary.LittleEndian.AppendUint64(buf, v)
}

// testRegistry registers the jobs the tests share: "sleepsum" (sleep,
// touch the domain's OpenMP runtime, echo the value) and "echo".
func testRegistry(t *testing.T) *Registry {
	t.Helper()
	reg := NewRegistry()
	sleepsum := FuncJob{
		JobName: "sleepsum",
		Fn: func(rt *core.Runtime, arg []byte) ([]byte, error) {
			if len(arg) != 12 {
				return nil, fmt.Errorf("bad arg: %d bytes", len(arg))
			}
			ms := binary.LittleEndian.Uint32(arg)
			v := binary.LittleEndian.Uint64(arg[4:])
			if ms > 0 {
				time.Sleep(time.Duration(ms) * time.Millisecond)
			}
			var mu sync.Mutex
			var sum uint64
			err := rt.ParallelForRange(64, func(lo, hi int) {
				mu.Lock()
				sum += uint64(hi - lo)
				mu.Unlock()
			})
			if err != nil {
				return nil, err
			}
			if sum != 64 {
				return nil, fmt.Errorf("runtime summed %d, want 64", sum)
			}
			return binary.LittleEndian.AppendUint64(nil, v), nil
		},
	}
	echo := FuncJob{
		JobName: "echo",
		Fn: func(rt *core.Runtime, arg []byte) ([]byte, error) {
			return append([]byte(nil), arg...), nil
		},
	}
	for _, j := range []Job{sleepsum, echo} {
		if err := reg.Register(j); err != nil {
			t.Fatal(err)
		}
	}
	return reg
}

func decodeU64(t *testing.T, b []byte) uint64 {
	t.Helper()
	if len(b) != 8 {
		t.Fatalf("result is %d bytes, want 8", len(b))
	}
	return binary.LittleEndian.Uint64(b)
}

func TestSubmitDistributes(t *testing.T) {
	rec := trace.NewRecorder(4096)
	f, err := NewFabric(testRegistry(t),
		WithDomains(3),
		WithHeartbeat(10*time.Millisecond),
		WithEventSink(rec),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	g := f.NewGroup()
	const n = 24
	var want uint64
	handles := make([]*TaskHandle, 0, n)
	for i := 0; i < n; i++ {
		h, err := g.SubmitJob("sleepsum", sleepSumArg(1, uint64(i)*7+1))
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
		want += uint64(i)*7 + 1
	}
	if err := g.WaitAll(TimeoutInfinite); err != nil {
		t.Fatalf("WaitAll: %v", err)
	}
	var got uint64
	for _, h := range handles {
		res, err := h.Wait(0) // settled group: zero-timeout poll must succeed
		if err != nil {
			t.Fatalf("task %d: %v", h.ID(), err)
		}
		got += decodeU64(t, res)
	}
	if got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
	st := f.Stats()
	if st.Submitted != n {
		t.Errorf("Submitted = %d, want %d", st.Submitted, n)
	}
	if st.RemoteTasks == 0 {
		t.Error("no tasks ran remotely: fabric did not distribute")
	}
	if st.DomainsLost != 0 {
		t.Errorf("DomainsLost = %d, want 0", st.DomainsLost)
	}
	sum := rec.Summary()
	if sum.TaskSends == 0 || sum.TaskRecvs == 0 {
		t.Errorf("trace recorded %d sends / %d recvs, want > 0", sum.TaskSends, sum.TaskRecvs)
	}
	if sum.TaskRecvs != st.RemoteTasks+st.LocalTasks {
		t.Errorf("trace recvs %d != completed tasks %d", sum.TaskRecvs, st.RemoteTasks+st.LocalTasks)
	}
}

// The kill-mid-graph scenario — a domain killed while holding stolen
// tasks, graph still settling byte-exact with exactly one lost domain —
// was promoted to a fixed-seed chaos campaign: see
// chaos.KillMidGraphCampaign (internal/chaos) and TestKillMidGraphCampaign,
// replayable standalone with `ompmca-chaos -kill-mid-graph`.

func TestReadmitDomain(t *testing.T) {
	f, err := NewFabric(testRegistry(t),
		WithDomains(2),
		WithHeartbeat(5*time.Millisecond), // lost after 40ms
	)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	if err := f.ReadmitDomain(0); err == nil {
		t.Error("ReadmitDomain accepted a live domain")
	}
	if err := f.ReadmitDomain(99); err == nil {
		t.Error("ReadmitDomain accepted an out-of-range index")
	}

	if err := f.KillDomain(0); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for f.Stats().DomainsLost == 0 {
		if time.Now().After(deadline) {
			t.Fatal("domain never declared lost")
		}
		time.Sleep(time.Millisecond)
	}

	if err := f.ReadmitDomain(0); err != nil {
		t.Fatalf("ReadmitDomain: %v", err)
	}
	if st := f.Stats(); st.Readmissions != 1 {
		t.Errorf("Readmissions = %d, want 1", st.Readmissions)
	}

	// The readmitted fabric must serve tasks correctly again.
	g := f.NewGroup()
	var want uint64
	for i := 0; i < 8; i++ {
		if _, err := g.SubmitJob("sleepsum", sleepSumArg(1, uint64(i))); err != nil {
			t.Fatal(err)
		}
		want += uint64(i)
	}
	if err := g.WaitAll(TimeoutInfinite); err != nil {
		t.Fatalf("post-readmission WaitAll: %v", err)
	}
	var got uint64
	for {
		h, err := g.WaitAny(0)
		if err == ErrGroupDrained {
			break
		}
		if err != nil {
			t.Fatalf("WaitAny: %v", err)
		}
		res, err := h.Wait(0)
		if err != nil {
			t.Fatal(err)
		}
		got += decodeU64(t, res)
	}
	if got != want {
		t.Errorf("post-readmission sum = %d, want %d", got, want)
	}
	if st := f.Stats(); st.DomainsLost != 1 {
		t.Errorf("DomainsLost = %d, want 1 (readmission must not re-count)", st.DomainsLost)
	}
}

func TestGroupCancel(t *testing.T) {
	f, err := NewFabric(testRegistry(t),
		WithDomains(2),
		WithDomainWorkers(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	g := f.NewGroup()
	for i := 0; i < 10; i++ {
		if _, err := g.SubmitJob("sleepsum", sleepSumArg(100, 1)); err != nil {
			t.Fatal(err)
		}
	}
	g.Cancel()
	if err := g.WaitAll(5 * time.Second); !errors.Is(err, ErrCanceled) {
		t.Errorf("WaitAll after Cancel = %v, want ErrCanceled", err)
	}
	if st := f.Stats(); st.Canceled == 0 {
		t.Error("Canceled = 0, want > 0")
	}
	g.Cancel() // idempotent
}

func TestZeroTimeoutPollsOnce(t *testing.T) {
	f, err := NewFabric(testRegistry(t), WithDomains(1))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	g := f.NewGroup()
	h, err := g.SubmitJob("sleepsum", sleepSumArg(200, 9))
	if err != nil {
		t.Fatal(err)
	}
	if _, werr := h.Wait(0); werr != ErrTimeout {
		t.Errorf("Wait(0) on a running task = %v, want ErrTimeout", werr)
	}
	if werr := g.WaitAll(0); werr != ErrTimeout {
		t.Errorf("WaitAll(0) on a running group = %v, want ErrTimeout", werr)
	}
	if _, werr := g.WaitAny(0); werr != ErrTimeout {
		t.Errorf("WaitAny(0) on a running group = %v, want ErrTimeout", werr)
	}

	if werr := g.WaitAll(5 * time.Second); werr != nil {
		t.Fatalf("WaitAll: %v", werr)
	}
	res, werr := h.Wait(0)
	if werr != nil {
		t.Fatalf("Wait(0) on a settled task: %v", werr)
	}
	if decodeU64(t, res) != 9 {
		t.Errorf("result = %d, want 9", decodeU64(t, res))
	}
	if _, werr := g.WaitAny(0); werr == nil {
		// First WaitAny delivers the one member.
	} else if werr != ErrGroupDrained {
		t.Errorf("WaitAny(0) = %v, want delivery or ErrGroupDrained", werr)
	}
	if _, werr := g.WaitAny(0); werr != ErrGroupDrained {
		t.Errorf("WaitAny on a drained group = %v, want ErrGroupDrained", werr)
	}
}

func TestJobErrors(t *testing.T) {
	reg := testRegistry(t)
	bad := FuncJob{
		JobName: "bad",
		Fn: func(rt *core.Runtime, arg []byte) ([]byte, error) {
			return nil, fmt.Errorf("synthetic failure")
		},
	}
	if err := reg.Register(bad); err != nil {
		t.Fatal(err)
	}
	f, err := NewFabric(reg, WithDomains(1))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	if _, err := f.SubmitJob("nope", nil); err == nil {
		t.Error("unknown job accepted at submit")
	}
	h, err := f.SubmitJob("bad", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, werr := h.Wait(TimeoutInfinite); werr == nil {
		t.Error("job error did not propagate")
	}
}

func TestCloseSettlesOutstanding(t *testing.T) {
	f, err := NewFabric(testRegistry(t), WithDomains(1), WithDomainWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	h1, err := f.SubmitJob("sleepsum", sleepSumArg(500, 1))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := f.SubmitJob("sleepsum", sleepSumArg(500, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for _, h := range []*TaskHandle{h1, h2} {
		if _, werr := h.Wait(time.Second); werr != ErrClosed {
			t.Errorf("task %d after Close: %v, want ErrClosed", h.ID(), werr)
		}
	}
	if _, err := f.SubmitJob("echo", nil); err != ErrClosed {
		t.Errorf("SubmitJob after Close = %v, want ErrClosed", err)
	}
	_ = f.Close() // idempotent
}
