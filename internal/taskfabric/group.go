package taskfabric

import (
	"errors"
	"sync"
	"time"

	"openmpmca/internal/oerrors"
)

// Group collects related tasks for collective completion — the host-side
// analogue of mtapi.Group, spanning domains. WaitAny delivers each
// completed task exactly once, which lets a driver expand dynamic task
// graphs (submit children as parents complete); WaitAll settles the
// whole group. Cancel stops whatever has not started: host-pending and
// in-flight tasks settle with ErrCanceled, and worker domains drop the
// group's queued tasks on receipt of a group-done frame.
type Group struct {
	f  *Fabric
	id uint64

	mu       sync.Mutex
	pending  int           // submitted, not yet completed
	all      []*TaskHandle // every member ever submitted
	ready    []*TaskHandle // completed, not yet delivered via WaitAny
	notify   chan struct{} // cap 1: completion signal
	canceled bool
}

// NewGroup creates an empty task group.
func (f *Fabric) NewGroup() *Group {
	return &Group{f: f, id: f.groupSeq.Add(1), notify: make(chan struct{}, 1)}
}

// SubmitJob submits one task into the group.
func (g *Group) SubmitJob(job string, arg []byte) (*TaskHandle, error) {
	return g.f.submit(job, arg, g)
}

// Pending reports members submitted but not yet completed.
func (g *Group) Pending() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.pending
}

func (g *Group) addMember(h *TaskHandle) {
	g.mu.Lock()
	g.pending++
	g.all = append(g.all, h)
	g.mu.Unlock()
}

// dropMember undoes addMember for a submit that never reached the
// scheduler.
func (g *Group) dropMember(h *TaskHandle) {
	g.mu.Lock()
	g.pending--
	for i, m := range g.all {
		if m == h {
			g.all = append(g.all[:i], g.all[i+1:]...)
			break
		}
	}
	g.mu.Unlock()
}

// taskDone is called by the scheduler when a member settles.
func (g *Group) taskDone(h *TaskHandle) {
	g.mu.Lock()
	g.pending--
	g.ready = append(g.ready, h)
	g.mu.Unlock()
	select {
	case g.notify <- struct{}{}:
	default:
	}
}

// WaitAny returns one completed member, each exactly once, under the
// package timeout contract; ErrGroupDrained when no member is
// outstanding or undelivered. The returned handle is already settled —
// its Wait returns immediately.
func (g *Group) WaitAny(timeout time.Duration) (*TaskHandle, error) {
	var timeC <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timeC = t.C
	}
	for {
		g.mu.Lock()
		if len(g.ready) > 0 {
			h := g.ready[0]
			g.ready = g.ready[1:]
			if len(g.ready) > 0 {
				select {
				case g.notify <- struct{}{}:
				default:
				}
			}
			g.mu.Unlock()
			return h, nil
		}
		if g.pending == 0 {
			g.mu.Unlock()
			return nil, ErrGroupDrained
		}
		g.mu.Unlock()
		switch {
		case timeout < 0:
			<-g.notify
		case timeout == 0:
			return nil, ErrTimeout
		default:
			select {
			case <-g.notify:
			case <-timeC:
				return nil, ErrTimeout
			}
		}
	}
}

// WaitAll blocks until every member settles, under the package timeout
// contract. A member's real failure (job error, cancellation, closure)
// is returned as-is; if all members succeeded but some were re-executed
// after a domain died, WaitAll returns an ErrDomainLost-wrapped error —
// results are still complete and correct, mirroring offload regions.
func (g *Group) WaitAll(timeout time.Duration) error {
	var timeC <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timeC = t.C
	}
	for {
		g.mu.Lock()
		if g.pending == 0 {
			members := append([]*TaskHandle(nil), g.all...)
			g.mu.Unlock()
			var recovered bool
			for _, h := range members {
				switch err := h.errOf(); {
				case err == nil:
				case errors.Is(err, ErrDomainLost):
					recovered = true
				default:
					return err
				}
			}
			if recovered {
				return oerrors.Errorf(oerrors.Domain, oerrors.CodeDomainLost,
					"taskfabric: group %d: %w", g.id, ErrDomainLost)
			}
			return nil
		}
		g.mu.Unlock()
		switch {
		case timeout < 0:
			<-g.notify
		case timeout == 0:
			return ErrTimeout
		default:
			select {
			case <-g.notify:
			case <-timeC:
				return ErrTimeout
			}
		}
	}
}

// Cancel settles every not-yet-completed member with ErrCanceled and
// tells worker domains to drop the group's queued tasks. Tasks already
// running on a domain finish there; their results are discarded.
// Idempotent; safe concurrently with waits.
func (g *Group) Cancel() {
	g.mu.Lock()
	if g.canceled {
		g.mu.Unlock()
		return
	}
	g.canceled = true
	g.mu.Unlock()
	select {
	case g.f.cancelCh <- g:
	case <-g.f.stopCh:
	}
}
