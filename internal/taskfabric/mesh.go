package taskfabric

import (
	"time"

	"openmpmca/internal/mcapi"
	"openmpmca/internal/mrapi"
	"openmpmca/internal/offload"
)

// The zero-copy data plane: one standalone MRAPI system modeling the
// board's interconnect-visible shared memory. Every participant — the
// host (index 0) and each worker domain (index i) — owns one DMA-kind
// remote-memory window carved into recyclable leases by a WindowArena,
// and every participant is attached to every window so any side can DMA
// a peer's staged payload out. Frames then carry only (owner, offset,
// len) descriptors above the WithZeroCopyThreshold size.
//
// Lease lifecycle: the WRITER owns its lease. The host releases a
// staged task argument when the task settles (so deadline re-dispatches
// and peer-yield forwards reuse the same bytes); a worker releases a
// staged result when the host's KindRmemAck arrives. Acks ride lossy
// channels, so arenas also sweep leases older than planeLeaseMaxAge
// when an allocation would otherwise fail — and a failed lease simply
// ships the payload inline, keeping the plane a pure optimization.
const (
	// planeWindowBytes sizes each participant's window.
	planeWindowBytes = 1 << 20
	// planeLeaseMaxAge bounds how long a lease dropped on the floor (a
	// lost ack, a killed reader) can occupy its window.
	planeLeaseMaxAge = 30 * time.Second
)

// rmemPlane is the host's handle on the plane. Index 0 everywhere is
// the host; index i (1-based) is worker domain i.
type rmemPlane struct {
	sys     *mrapi.System
	host    *mrapi.Node
	nodes   []*mrapi.Node
	windows []*mrapi.Rmem
	arenas  []*mrapi.WindowArena
}

// newRmemPlane builds the shared interconnect memory for one host plus
// n worker domains.
func newRmemPlane(n int) (*rmemPlane, error) {
	p := &rmemPlane{sys: mrapi.NewSystem(nil)}
	for i := 0; i <= n; i++ {
		node, err := p.sys.Initialize(0, mrapi.NodeID(i), nil)
		if err != nil {
			return nil, err
		}
		p.nodes = append(p.nodes, node)
	}
	p.host = p.nodes[0]
	attrs := &mrapi.RmemAttributes{Access: mrapi.RmemDMA}
	for i, node := range p.nodes {
		rm, err := node.RmemCreate(mrapi.Key(i), planeWindowBytes, attrs)
		if err != nil {
			return nil, err
		}
		p.windows = append(p.windows, rm)
		p.arenas = append(p.arenas, mrapi.NewWindowArena(rm, planeLeaseMaxAge))
	}
	for _, rm := range p.windows {
		for _, node := range p.nodes {
			if err := rm.Attach(node); err != nil {
				return nil, err
			}
		}
	}
	return p, nil
}

// ackRmem tells a worker-owned arena its slot was consumed (or will
// never be read because the task already settled). Best-effort: a full
// or dead command channel just means the lease waits for the sweep.
func (f *Fabric) ackRmem(d offload.RmemDescFrame) {
	li := int(d.Owner) - 1
	if li < 0 || li >= len(f.links) {
		return // host-owned leases are released at settle, never acked
	}
	pkt := offload.EncodeRmemAck(offload.RmemAckFrame{Owner: d.Owner, Offset: d.Offset})
	_ = f.links[li].cmd.Send(pkt, mcapi.TimeoutImmediate)
	offload.RecycleFrame(pkt)
}

// readRmemResult runs off the scheduler goroutine: DMA the staged
// result payload out of the owner's window, ack the slot, and hand the
// completed result frame back to the scheduler. On a read failure the
// result is dropped — the task's deadline re-dispatches it, so
// correctness never depends on the plane.
func (f *Fabric) readRmemResult(dom int, m offload.TaskResultFrame, owner uint32, offset uint64, length uint32) {
	data, err := mrapi.RmemReadPadded(f.plane.windows[owner], f.plane.host, int(offset), int(length))
	f.ackRmem(offload.RmemDescFrame{Owner: owner, Offset: offset})
	ok := err == nil
	if ok {
		m.Payload = data
		f.st.rmemBytesMoved.Add(uint64(length))
	}
	select {
	case f.rmemResCh <- rmemResult{dom: dom, m: m, ok: ok}:
	case <-f.stopCh:
	}
}
