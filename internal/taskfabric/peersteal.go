package taskfabric

import (
	"time"

	"openmpmca/internal/mcapi"
	"openmpmca/internal/offload"
)

// Worker side of the peer-to-peer steal mesh. An idle worker picks the
// most-loaded victim from the host's latest occupancy broadcast and
// sends a KindPeerSteal straight to it over the mesh; the victim cancels
// still-queued tasks and yields them directly back. The host never
// relays task frames on this path — it only learns of the migration via
// the thief's KindStealMoved, which re-points flight accounting.
//
// Fallback ladder: no usable peer channel, a failed send, or a steal
// request unanswered past stealPending all degrade to the classic
// host-brokered path (KindPeerSteal on the result channel), so a dead
// mesh link costs latency, never correctness.

// stealPending is how long a direct steal request may go unanswered —
// victim killed, frame dropped by fault injection — before the thief
// gives up on the peer and asks the host to broker instead. Checked on
// load-map arrivals, so resolution is the host's tick.
const stealPending = 50 * time.Millisecond

// peerLoop services one inbound mesh channel. Receives are cancelable
// requests so Kill can yank the loop, mirroring dispatch.
func (w *worker) peerLoop(peer int, recv *mcapi.PktRecvHandle) {
	defer w.wg.Done()
	for {
		req := recv.RecvI(mcapi.TimeoutInfinite)
		w.peerReqMu.Lock()
		w.peerReqs[peer] = req
		w.peerReqMu.Unlock()
		if w.killed.Load() {
			_ = req.Cancel()
		}
		if err := req.Wait(mcapi.TimeoutInfinite); err != nil {
			return
		}
		pkt, _, _ := req.Payload()
		kind, ok := offload.FrameKind(pkt)
		if !ok {
			continue
		}
		// The loop owns each delivered packet exclusively, so shared
		// (aliasing) decodes are safe here.
		switch kind {
		case offload.KindPeerSteal:
			if m, err := offload.DecodePeerSteal(pkt); err == nil {
				w.peerYield(int(m.Thief), int(m.Want))
			}
		case offload.KindPeerYield:
			if m, err := offload.DecodePeerYieldShared(pkt); err == nil {
				w.acceptPeerYield(m.Victim, m.Task, nil)
			}
		case offload.KindRmemDesc:
			d, err := offload.DecodeRmemDescShared(pkt)
			if err != nil || d.Inner != offload.KindPeerYield || w.rnode == nil {
				continue
			}
			if int(d.Owner) >= len(w.rwin) {
				continue
			}
			m, err := offload.DecodePeerYieldShared(d.Header)
			if err != nil {
				continue
			}
			w.acceptPeerYield(m.Victim, m.Task,
				&rmemRef{owner: d.Owner, offset: d.Offset, length: d.Length})
		}
	}
}

// onLoadMap stores the host's occupancy broadcast and re-evaluates
// stealing: the map is both the victim-selection input and the clock
// that times out unanswered peer requests.
func (w *worker) onLoadMap(pkt []byte) {
	m, err := offload.DecodeLoadMap(pkt)
	if err != nil {
		return
	}
	w.loadMap.Store(&m.Occ)
	w.maybeSteal()
}

// maybeSteal sends a direct steal request when this worker is idle and a
// peer is loaded enough to be worth robbing. At most one request is
// outstanding at a time; one gone unanswered past stealPending falls
// back to host brokerage.
func (w *worker) maybeSteal() {
	if w.killed.Load() || len(w.peerSend) == 0 {
		return
	}
	w.qmu.Lock()
	idle := len(w.queued) == 0 && w.running == 0
	w.qmu.Unlock()
	if !idle {
		return
	}
	lm := w.loadMap.Load()
	if lm == nil {
		return
	}
	now := time.Now()
	w.stealMu.Lock()
	if w.stealVictim >= 0 {
		if now.Sub(w.stealAt) < stealPending {
			w.stealMu.Unlock()
			return
		}
		w.stealVictim = -1
		w.stealMu.Unlock()
		w.brokeredFallback()
		return
	}
	victim, best := -1, uint32(stealMin)
	for i, occ := range *lm {
		dom := i + 1
		if dom == w.id {
			continue
		}
		if occ >= best && w.peerSend[dom] != nil {
			victim, best = dom, occ
		}
	}
	if victim < 0 {
		w.stealMu.Unlock()
		return
	}
	w.stealVictim, w.stealAt = victim, now
	w.stealMu.Unlock()

	want := best / 2
	if want == 0 {
		want = 1
	}
	pkt := offload.EncodePeerSteal(offload.PeerStealFrame{Thief: uint32(w.id), Want: want})
	err := w.peerSend[victim].Send(pkt, mcapi.TimeoutImmediate)
	offload.RecycleFrame(pkt)
	if err != nil {
		// Dead or saturated mesh link: broker through the host instead.
		w.stealMu.Lock()
		if w.stealVictim == victim {
			w.stealVictim = -1
		}
		w.stealMu.Unlock()
		w.brokeredFallback()
	}
}

// brokeredFallback asks the host to run the classic steal-grant path on
// this worker's behalf.
func (w *worker) brokeredFallback() {
	if w.killed.Load() {
		return
	}
	w.flush(offload.EncodePeerSteal(offload.PeerStealFrame{Thief: uint32(w.id), Want: 1}))
}

// peerYield answers a direct steal request: cancel up to want queued
// tasks and ship them straight to the thief — descriptor-wrapped when
// the argument is staged in a window, so the payload still moves only
// once, window to executor. A failed mesh send re-accepts the remaining
// tasks locally rather than strand them; the thief's stealPending
// timeout then degrades it to host brokerage. A credit report follows so
// the host sees the victim's new occupancy promptly.
func (w *worker) peerYield(thief, want int) {
	send := w.peerSend[thief]
	if send == nil || w.killed.Load() || want <= 0 {
		return
	}
	var yields []*queuedTask
	w.qmu.Lock()
	for id, qt := range w.queued {
		if len(yields) >= want {
			break
		}
		if qt.mt == nil || qt.mt.Cancel() != nil {
			continue // about to run, or already running
		}
		delete(w.queued, id)
		yields = append(yields, qt)
	}
	credit := offload.CreditFrame{
		Domain:  uint32(w.id),
		Queued:  uint32(len(w.queued)),
		Running: uint32(w.running),
	}
	w.qmu.Unlock()
	if w.killed.Load() {
		// Killed mid-yield: canceled-but-unsent tasks die with the
		// domain. The host's flights still point here, so heartbeat loss
		// reclaims and re-dispatches every one of them.
		return
	}
	for i, qt := range yields {
		pkt := w.encodePeerYield(qt.frame, qt.ref)
		err := send.Send(pkt, mcapi.TimeoutImmediate)
		offload.RecycleFrame(pkt)
		if err != nil {
			for _, rest := range yields[i:] {
				w.acceptFrame(rest.frame, rest.ref)
			}
			break
		}
	}
	w.flush(offload.EncodeCredit(credit))
}

// encodePeerYield encodes one yielded task for the mesh, preserving a
// window descriptor if the argument was staged.
func (w *worker) encodePeerYield(f offload.TaskFrame, ref *rmemRef) []byte {
	if ref == nil {
		return offload.EncodePeerYield(offload.PeerYieldFrame{Victim: uint32(w.id), Task: f})
	}
	inner := f
	inner.Arg = nil
	hdr := offload.EncodePeerYield(offload.PeerYieldFrame{Victim: uint32(w.id), Task: inner})
	desc := offload.EncodeRmemDesc(offload.RmemDescFrame{
		Inner:  offload.KindPeerYield,
		Owner:  ref.owner,
		Offset: ref.offset,
		Length: ref.length,
		Header: hdr,
	})
	offload.RecycleFrame(hdr)
	return desc
}

// acceptPeerYield lands a directly-yielded task on this worker and tells
// the host to re-point its accounting. Duplicates (fault-injected dup
// frames) are rejected by acceptFrame, so KindStealMoved is sent at most
// once per landed task.
func (w *worker) acceptPeerYield(victim uint32, f offload.TaskFrame, ref *rmemRef) {
	w.stealMu.Lock()
	if w.stealVictim == int(victim) {
		w.stealVictim = -1
	}
	w.stealMu.Unlock()
	if w.killed.Load() || !w.acceptFrame(f, ref) {
		return
	}
	w.flush(offload.EncodeStealMoved(offload.StealMovedFrame{
		Task:   f.Task,
		Thief:  uint32(w.id),
		Victim: victim,
	}))
}
