package taskfabric

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"openmpmca/internal/trace"
)

// trace.Recorder and the fabric's own sink contract must both see peer
// steals.
var _ PeerStealSink = (*trace.Recorder)(nil)

// stealFixture builds the canonical imbalance: serial domains, two long
// blockers pinning the first domains scheduled, and a tail of quick
// tasks queued behind them — so whichever domain drains its queue first
// goes idle while loaded peers still hold stealable work.
func stealFixture(t *testing.T, f *Fabric) (*Group, []*TaskHandle, []uint64) {
	t.Helper()
	g := f.NewGroup()
	for i := 0; i < 2; i++ {
		if _, err := g.SubmitJob("sleepsum", sleepSumArg(250, 0)); err != nil {
			t.Fatal(err)
		}
	}
	var handles []*TaskHandle
	var want []uint64
	for i := 0; i < 18; i++ {
		v := uint64(i)*13 + 1
		h, err := g.SubmitJob("sleepsum", sleepSumArg(2, v))
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
		want = append(want, v)
	}
	return g, handles, want
}

func verifyExact(t *testing.T, handles []*TaskHandle, want []uint64) {
	t.Helper()
	for i, h := range handles {
		res, err := h.Wait(0)
		if err != nil && !errors.Is(err, ErrDomainLost) {
			t.Fatalf("task %d: %v", h.ID(), err)
		}
		if got := decodeU64(t, res); got != want[i] {
			t.Fatalf("task %d = %d, want %d", h.ID(), got, want[i])
		}
	}
}

func TestPeerStealDirect(t *testing.T) {
	rec := trace.NewRecorder(4096)
	f, err := NewFabric(testRegistry(t),
		WithDomains(3),
		WithDomainWorkers(1),
		WithTaskDeadline(10*time.Second), // keep re-dispatch from masking steals
		WithInflight(16),
		WithEventSink(rec),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	g, handles, want := stealFixture(t, f)
	if err := g.WaitAll(30 * time.Second); err != nil {
		t.Fatalf("WaitAll: %v", err)
	}
	verifyExact(t, handles, want)

	st := f.Stats()
	if st.PeerSteals == 0 {
		t.Fatalf("PeerSteals = 0 (Steals = %d): no direct mesh migration happened", st.Steals)
	}
	if st.Steals < st.PeerSteals {
		t.Errorf("Steals %d < PeerSteals %d: peer steals must count as steals", st.Steals, st.PeerSteals)
	}
	if sum := rec.Summary(); sum.PeerSteals != st.PeerSteals {
		t.Errorf("trace PeerSteals %d != stats %d", sum.PeerSteals, st.PeerSteals)
	}
}

func TestPeerStealingOffAblation(t *testing.T) {
	f, err := NewFabric(testRegistry(t),
		WithDomains(3),
		WithDomainWorkers(1),
		WithPeerStealing(false),
		WithTaskDeadline(10*time.Second),
		WithInflight(16),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	g, handles, want := stealFixture(t, f)
	if err := g.WaitAll(30 * time.Second); err != nil {
		t.Fatalf("WaitAll: %v", err)
	}
	verifyExact(t, handles, want)

	st := f.Stats()
	if st.PeerSteals != 0 {
		t.Errorf("PeerSteals = %d with peer stealing off, want 0", st.PeerSteals)
	}
	if st.BrokeredFallbacks != 0 {
		t.Errorf("BrokeredFallbacks = %d with peer stealing off, want 0", st.BrokeredFallbacks)
	}
	if st.Steals == 0 {
		t.Error("Steals = 0: host-brokered stealing must still work in the ablation config")
	}
}

// TestKillVictimMidYield races a domain kill against in-flight peer
// steals (run under -race in CI): once the first steal lands, the
// most-loaded live domain — the likeliest victim of the next one — is
// killed. Tasks it canceled-but-never-sent die with it; the host's
// heartbeat loss reclaims them, idle thieves fall back to host
// brokerage, and every task must still settle byte-exact.
func TestKillVictimMidYield(t *testing.T) {
	f, err := NewFabric(testRegistry(t),
		WithDomains(4),
		WithDomainWorkers(1),
		WithHeartbeat(5*time.Millisecond), // lost after 40ms
		WithTaskDeadline(10*time.Second),
		WithInflight(16),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	g, handles, want := stealFixture(t, f)

	deadline := time.Now().Add(10 * time.Second)
	for f.Stats().Steals == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	victim, load := 0, -1
	for _, d := range f.DomainInfos() {
		if d.Live && d.Outstanding > load {
			victim, load = d.ID, d.Outstanding
		}
	}
	if err := f.KillDomain(victim); err != nil {
		t.Fatalf("KillDomain(%d): %v", victim, err)
	}

	if err := g.WaitAll(30 * time.Second); err != nil && !errors.Is(err, ErrDomainLost) {
		t.Fatalf("WaitAll: %v", err)
	}
	verifyExact(t, handles, want)
	if st := f.Stats(); st.DomainsLost != 1 {
		t.Errorf("DomainsLost = %d, want 1", st.DomainsLost)
	}
}

func TestZeroCopyPayloads(t *testing.T) {
	f, err := NewFabric(testRegistry(t),
		WithDomains(2),
		WithZeroCopyThreshold(1024),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Big echo payloads cross the threshold in both directions: the
	// argument is staged by the host, the equal-sized result by the
	// worker.
	arg := make([]byte, 32<<10)
	for i := range arg {
		arg[i] = byte(i * 31)
	}
	g := f.NewGroup()
	var handles []*TaskHandle
	for i := 0; i < 8; i++ {
		h, err := g.SubmitJob("echo", arg)
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	if err := g.WaitAll(30 * time.Second); err != nil {
		t.Fatalf("WaitAll: %v", err)
	}
	for _, h := range handles {
		res, err := h.Wait(0)
		if err != nil {
			t.Fatalf("task %d: %v", h.ID(), err)
		}
		if !bytes.Equal(res, arg) {
			t.Fatalf("task %d: payload corrupted across the window", h.ID())
		}
	}
	st := f.Stats()
	if st.RemoteTasks == 0 {
		t.Fatal("no tasks ran remotely")
	}
	if st.RmemBytesMoved == 0 {
		t.Error("RmemBytesMoved = 0: big payloads never used the zero-copy plane")
	}
}

func TestZeroCopyDisabled(t *testing.T) {
	f, err := NewFabric(testRegistry(t),
		WithDomains(2),
		WithZeroCopyThreshold(0), // plane off: everything inline
	)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	arg := make([]byte, 32<<10)
	h, err := f.SubmitJob("echo", arg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait(TimeoutInfinite)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res, arg) {
		t.Fatal("payload corrupted inline")
	}
	if st := f.Stats(); st.RmemBytesMoved != 0 {
		t.Errorf("RmemBytesMoved = %d with the plane disabled, want 0", st.RmemBytesMoved)
	}
}
