package taskfabric

import (
	"fmt"
	"sync"

	"openmpmca/internal/core"
)

// Job is work the fabric can execute on any domain. A job crosses the
// MCAPI wire by name only — every domain (and the host) must register
// the same jobs — and serializes its argument and result as opaque
// []byte, exactly like an offload.Kernel: nothing Go-specific may cross
// what the model treats as a hardware boundary.
type Job interface {
	// Name identifies the job on the wire.
	Name() string
	// Execute runs the job on the executing domain's OpenMP runtime.
	Execute(rt *core.Runtime, arg []byte) ([]byte, error)
}

// FuncJob adapts plain functions to Job.
type FuncJob struct {
	JobName string
	Fn      func(rt *core.Runtime, arg []byte) ([]byte, error)
}

// Name implements Job.
func (j FuncJob) Name() string { return j.JobName }

// Execute implements Job.
func (j FuncJob) Execute(rt *core.Runtime, arg []byte) ([]byte, error) { return j.Fn(rt, arg) }

// Registry maps job names to implementations. Register every job before
// handing the registry to NewFabric; lookups are concurrency-safe.
type Registry struct {
	mu   sync.RWMutex
	jobs map[string]Job
}

// NewRegistry creates an empty job registry.
func NewRegistry() *Registry {
	return &Registry{jobs: make(map[string]Job)}
}

// Register adds a job; names must be unique and non-empty.
func (r *Registry) Register(j Job) error {
	name := j.Name()
	if name == "" {
		return fmt.Errorf("taskfabric: job with empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.jobs[name]; dup {
		return fmt.Errorf("taskfabric: job %q already registered", name)
	}
	r.jobs[name] = j
	return nil
}

// Lookup resolves a job by name.
func (r *Registry) Lookup(name string) (Job, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	j, ok := r.jobs[name]
	return j, ok
}
