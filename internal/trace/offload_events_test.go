package trace

import "testing"

func TestOffloadEvents(t *testing.T) {
	r := NewRecorder(16)
	r.OffloadSend(2, 7)
	r.OffloadSend(0, 8)
	r.OffloadRecv(2, 7)
	r.OffloadRecv(-1, 8) // local completion

	sum := r.Summary()
	if sum.OffloadSends != 2 || sum.OffloadRecvs != 2 {
		t.Errorf("Summary offload counters = %d sends / %d recvs, want 2/2", sum.OffloadSends, sum.OffloadRecvs)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	if evs[0].Kind != EvOffloadSend || evs[0].Tid != 2 || evs[0].Units != 7 {
		t.Errorf("event 0 = %v, want offload-send domain 2 chunk 7", evs[0])
	}
	if evs[3].Kind != EvOffloadRecv || evs[3].Tid != -1 {
		t.Errorf("event 3 = %v, want local offload-recv", evs[3])
	}
	if EvOffloadSend.String() != "offload-send" || EvOffloadRecv.String() != "offload-recv" {
		t.Errorf("event kind names wrong: %q, %q", EvOffloadSend, EvOffloadRecv)
	}
}
