// Package trace records the OpenMP runtime's execution events — it
// implements core.Monitor with a bounded in-memory event log plus
// aggregate counters, for debugging parallel structure and for asserting
// construct sequences in tests. Combine it with the virtual-time model via
// Tee to trace and time one run simultaneously.
package trace

import (
	"fmt"
	"strings"
	"sync"

	"openmpmca/internal/core"
)

// EventKind classifies a recorded event.
type EventKind int

// Event kinds, mirroring the Monitor callbacks.
const (
	EvFork EventKind = iota
	EvJoin
	EvCharge
	EvBarrier
	EvCriticalEnter
	EvCriticalExit
	EvSingle
	EvReduction
	EvTask
	EvSteal
	EvNestedFork
	EvNestedJoin
	EvCancel
	// EvOffloadSend / EvOffloadRecv record multi-domain offload traffic:
	// a chunk descriptor leaving for a worker domain and a chunk result
	// (local or remote) being accepted by the host scheduler. They are
	// emitted through the Recorder's OffloadSend/OffloadRecv methods — the
	// offload subsystem's EventSink — rather than the core.Monitor
	// interface, since they describe inter-domain messaging, not
	// intra-team execution.
	EvOffloadSend
	EvOffloadRecv
	// EvTaskSend / EvTaskRecv / EvTaskSteal record MTAPI task-fabric
	// traffic (internal/taskfabric): a task descriptor dispatched to a
	// worker domain, a task result accepted by the host, and a queued
	// task migrating from an overloaded domain to an idle one through a
	// host-brokered steal. Emitted through the Recorder's
	// TaskSend/TaskRecv/TaskSteal methods — the fabric's EventSink.
	EvTaskSend
	EvTaskRecv
	EvTaskSteal
	// EvPeerSteal records a direct domain-to-domain steal over the mesh
	// (internal/taskfabric with peer stealing on): the task never passed
	// through the host, which only re-pointed its accounting. Emitted
	// through the Recorder's PeerSteal method — the fabric's
	// PeerStealSink. Every peer steal is also counted as an EvTaskSteal.
	EvPeerSteal
)

var kindNames = [...]string{
	EvFork:          "fork",
	EvJoin:          "join",
	EvCharge:        "charge",
	EvBarrier:       "barrier",
	EvCriticalEnter: "critical+",
	EvCriticalExit:  "critical-",
	EvSingle:        "single",
	EvReduction:     "reduction",
	EvTask:          "task",
	EvSteal:         "steal",
	EvNestedFork:    "nested-fork",
	EvNestedJoin:    "nested-join",
	EvCancel:        "cancel",
	EvOffloadSend:   "offload-send",
	EvOffloadRecv:   "offload-recv",
	EvTaskSend:      "task-send",
	EvTaskRecv:      "task-recv",
	EvTaskSteal:     "task-steal",
	EvPeerSteal:     "peer-steal",
}

func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is one recorded runtime event.
type Event struct {
	Kind EventKind
	// Tid is the thread the event belongs to (-1 for team-wide events;
	// the thief for EvSteal, the outer thread for EvNestedFork/Join).
	Tid int
	// Units carries the charge amount or the team size, by kind; for
	// EvSteal it is the victim's thread id.
	Units float64
	// Seq is the global sequence number.
	Seq uint64
}

func (e Event) String() string {
	if e.Tid >= 0 {
		return fmt.Sprintf("#%d %s tid=%d units=%g", e.Seq, e.Kind, e.Tid, e.Units)
	}
	return fmt.Sprintf("#%d %s n=%g", e.Seq, e.Kind, e.Units)
}

// Summary aggregates a recording.
type Summary struct {
	Forks, Joins, Barriers, Singles, Reductions uint64
	Criticals                                   uint64
	Tasks, Steals                               uint64
	NestedForks, NestedJoins                    uint64
	Cancels                                     uint64
	OffloadSends, OffloadRecvs                  uint64
	TaskSends, TaskRecvs, TaskSteals            uint64
	PeerSteals                                  uint64
	ChargeEvents                                uint64
	UnitsCharged                                float64
	UnitsByThread                               map[int]float64
	Dropped                                     uint64 // events lost to the ring bound
}

// Recorder is a bounded-ring core.Monitor. The zero value is not usable;
// create one with NewRecorder.
type Recorder struct {
	mu      sync.Mutex
	ring    []Event
	next    int
	full    bool
	seq     uint64
	dropped uint64
	sum     Summary
}

// DefaultCapacity bounds a recorder's ring when 0 is requested.
const DefaultCapacity = 4096

// NewRecorder creates a recorder keeping the last capacity events
// (DefaultCapacity if capacity <= 0). Aggregate counters cover ALL events
// regardless of ring wrap.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{
		ring: make([]Event, 0, capacity),
		sum:  Summary{UnitsByThread: make(map[int]float64)},
	}
}

func (r *Recorder) record(kind EventKind, tid int, units float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := Event{Kind: kind, Tid: tid, Units: units, Seq: r.seq}
	r.seq++
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, e)
	} else {
		r.ring[r.next] = e
		r.next = (r.next + 1) % cap(r.ring)
		r.full = true
		r.dropped++
	}
	switch kind {
	case EvFork:
		r.sum.Forks++
	case EvJoin:
		r.sum.Joins++
	case EvBarrier:
		r.sum.Barriers++
	case EvSingle:
		r.sum.Singles++
	case EvReduction:
		r.sum.Reductions++
	case EvCriticalEnter:
		r.sum.Criticals++
	case EvTask:
		r.sum.Tasks++
	case EvSteal:
		r.sum.Steals++
	case EvNestedFork:
		r.sum.NestedForks++
	case EvNestedJoin:
		r.sum.NestedJoins++
	case EvCancel:
		r.sum.Cancels++
	case EvOffloadSend:
		r.sum.OffloadSends++
	case EvOffloadRecv:
		r.sum.OffloadRecvs++
	case EvTaskSend:
		r.sum.TaskSends++
	case EvTaskRecv:
		r.sum.TaskRecvs++
	case EvTaskSteal:
		r.sum.TaskSteals++
	case EvPeerSteal:
		r.sum.PeerSteals++
	case EvCharge:
		r.sum.ChargeEvents++
		r.sum.UnitsCharged += units
		r.sum.UnitsByThread[tid] += units
	}
}

// Fork implements core.Monitor.
func (r *Recorder) Fork(n int) { r.record(EvFork, -1, float64(n)) }

// Join implements core.Monitor.
func (r *Recorder) Join() { r.record(EvJoin, -1, 0) }

// Charge implements core.Monitor.
func (r *Recorder) Charge(tid int, units float64) { r.record(EvCharge, tid, units) }

// Barrier implements core.Monitor.
func (r *Recorder) Barrier() { r.record(EvBarrier, -1, 0) }

// CriticalEnter implements core.Monitor.
func (r *Recorder) CriticalEnter(tid int) { r.record(EvCriticalEnter, tid, 0) }

// CriticalExit implements core.Monitor.
func (r *Recorder) CriticalExit(tid int) { r.record(EvCriticalExit, tid, 0) }

// Single implements core.Monitor.
func (r *Recorder) Single(tid int) { r.record(EvSingle, tid, 0) }

// Reduction implements core.Monitor.
func (r *Recorder) Reduction(n int) { r.record(EvReduction, -1, float64(n)) }

// Task implements core.Monitor.
func (r *Recorder) Task(tid int) { r.record(EvTask, tid, 0) }

// Steal implements core.Monitor; the thief is the event's thread, the
// victim travels in Units.
func (r *Recorder) Steal(thief, victim int) { r.record(EvSteal, thief, float64(victim)) }

// NestedFork implements core.Monitor.
func (r *Recorder) NestedFork(tid, n int) { r.record(EvNestedFork, tid, float64(n)) }

// NestedJoin implements core.Monitor.
func (r *Recorder) NestedJoin(tid int) { r.record(EvNestedJoin, tid, 0) }

// Cancel implements core.Monitor.
func (r *Recorder) Cancel() { r.record(EvCancel, -1, 0) }

// OffloadSend records a chunk descriptor sent to a worker domain
// (offload.EventSink): the domain id travels as the event's thread, the
// chunk id in Units.
func (r *Recorder) OffloadSend(domain, chunk int) { r.record(EvOffloadSend, domain, float64(chunk)) }

// OffloadRecv records a chunk result accepted by the host scheduler
// (offload.EventSink); domain is -1 when the chunk ran locally.
func (r *Recorder) OffloadRecv(domain, chunk int) { r.record(EvOffloadRecv, domain, float64(chunk)) }

// TaskSend records a task descriptor dispatched to a worker domain
// (taskfabric.EventSink): the domain id travels as the event's thread,
// the task id in Units; domain is -1 for the host's local executor.
func (r *Recorder) TaskSend(domain, task int) { r.record(EvTaskSend, domain, float64(task)) }

// TaskRecv records a task result accepted by the fabric scheduler
// (taskfabric.EventSink); domain is -1 when the task ran locally.
func (r *Recorder) TaskRecv(domain, task int) { r.record(EvTaskRecv, domain, float64(task)) }

// TaskSteal records a queued task migrating between domains through a
// host-brokered steal: the thief is the event's thread, the victim
// travels in Units.
func (r *Recorder) TaskSteal(thief, victim int) { r.record(EvTaskSteal, thief, float64(victim)) }

// PeerSteal records a direct domain-to-domain steal over the mesh
// (taskfabric.PeerStealSink): the thief is the event's thread, the
// victim travels in Units.
func (r *Recorder) PeerSteal(thief, victim int) { r.record(EvPeerSteal, thief, float64(victim)) }

var _ core.Monitor = (*Recorder)(nil)

// Events returns the retained events in sequence order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Event(nil), r.ring...)
	}
	out := make([]Event, 0, cap(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// Summary returns the aggregate counters (whole run, not just the ring).
func (r *Recorder) Summary() Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.sum
	s.Dropped = r.dropped
	s.UnitsByThread = make(map[int]float64, len(r.sum.UnitsByThread))
	for k, v := range r.sum.UnitsByThread {
		s.UnitsByThread[k] = v
	}
	return s
}

// Reset clears the recording.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ring = r.ring[:0]
	r.next = 0
	r.full = false
	r.seq = 0
	r.dropped = 0
	r.sum = Summary{UnitsByThread: make(map[int]float64)}
}

// Render formats the retained events one per line.
func (r *Recorder) Render() string {
	var sb strings.Builder
	for _, e := range r.Events() {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Tee fans Monitor events out to several monitors — e.g. a perfmodel
// Model and a Recorder at once.
type Tee []core.Monitor

// NewTee builds a Tee, skipping nils.
func NewTee(ms ...core.Monitor) Tee {
	var t Tee
	for _, m := range ms {
		if m != nil {
			t = append(t, m)
		}
	}
	return t
}

// Fork implements core.Monitor.
func (t Tee) Fork(n int) {
	for _, m := range t {
		m.Fork(n)
	}
}

// Join implements core.Monitor.
func (t Tee) Join() {
	for _, m := range t {
		m.Join()
	}
}

// Charge implements core.Monitor.
func (t Tee) Charge(tid int, units float64) {
	for _, m := range t {
		m.Charge(tid, units)
	}
}

// Barrier implements core.Monitor.
func (t Tee) Barrier() {
	for _, m := range t {
		m.Barrier()
	}
}

// CriticalEnter implements core.Monitor.
func (t Tee) CriticalEnter(tid int) {
	for _, m := range t {
		m.CriticalEnter(tid)
	}
}

// CriticalExit implements core.Monitor.
func (t Tee) CriticalExit(tid int) {
	for _, m := range t {
		m.CriticalExit(tid)
	}
}

// Single implements core.Monitor.
func (t Tee) Single(tid int) {
	for _, m := range t {
		m.Single(tid)
	}
}

// Reduction implements core.Monitor.
func (t Tee) Reduction(n int) {
	for _, m := range t {
		m.Reduction(n)
	}
}

// Task implements core.Monitor.
func (t Tee) Task(tid int) {
	for _, m := range t {
		m.Task(tid)
	}
}

// Steal implements core.Monitor.
func (t Tee) Steal(thief, victim int) {
	for _, m := range t {
		m.Steal(thief, victim)
	}
}

// NestedFork implements core.Monitor.
func (t Tee) NestedFork(tid, n int) {
	for _, m := range t {
		m.NestedFork(tid, n)
	}
}

// NestedJoin implements core.Monitor.
func (t Tee) NestedJoin(tid int) {
	for _, m := range t {
		m.NestedJoin(tid)
	}
}

// Cancel implements core.Monitor.
func (t Tee) Cancel() {
	for _, m := range t {
		m.Cancel()
	}
}

var _ core.Monitor = Tee(nil)
