package trace

import (
	"strings"
	"sync"
	"testing"

	"openmpmca/internal/core"
	"openmpmca/internal/perfmodel"
	"openmpmca/internal/platform"
)

func TestRecorderCapturesRegionStructure(t *testing.T) {
	rec := NewRecorder(0)
	rt, err := core.New(
		core.WithLayer(core.NewNativeLayer(8)),
		core.WithNumThreads(4),
		core.WithMonitor(rec),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	_ = rt.Parallel(func(c *core.Context) {
		c.Charge(10)
		c.Barrier()
		c.Single(func() {})
		c.Critical(func() { c.Charge(1) })
	})

	s := rec.Summary()
	if s.Forks != 1 || s.Joins != 1 {
		t.Errorf("forks/joins = %d/%d", s.Forks, s.Joins)
	}
	if s.Singles != 1 {
		t.Errorf("singles = %d", s.Singles)
	}
	if s.Criticals != 4 {
		t.Errorf("criticals = %d, want 4 (one per thread)", s.Criticals)
	}
	// 4 threads × (10 + 1) units.
	if s.UnitsCharged != 44 {
		t.Errorf("units = %v, want 44", s.UnitsCharged)
	}
	if len(s.UnitsByThread) != 4 {
		t.Errorf("threads charged = %d", len(s.UnitsByThread))
	}
	// explicit barrier + single barrier + implicit region barrier = 3.
	if s.Barriers != 3 {
		t.Errorf("barriers = %d, want 3", s.Barriers)
	}

	events := rec.Events()
	if len(events) == 0 || events[0].Kind != EvFork {
		t.Fatalf("first event = %v, want fork", events)
	}
	if last := events[len(events)-1]; last.Kind != EvJoin {
		t.Errorf("last event = %v, want join", last)
	}
	// Sequence numbers are strictly increasing.
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("sequence not increasing at %d", i)
		}
	}
}

func TestRecorderRingBound(t *testing.T) {
	rec := NewRecorder(8)
	for i := 0; i < 20; i++ {
		rec.Charge(0, 1)
	}
	events := rec.Events()
	if len(events) != 8 {
		t.Fatalf("retained %d events, want 8", len(events))
	}
	// Oldest retained is #12.
	if events[0].Seq != 12 || events[7].Seq != 19 {
		t.Errorf("ring window = [%d, %d], want [12, 19]", events[0].Seq, events[7].Seq)
	}
	s := rec.Summary()
	if s.ChargeEvents != 20 || s.UnitsCharged != 20 {
		t.Errorf("aggregates must span the whole run: %+v", s)
	}
	if s.Dropped != 12 {
		t.Errorf("dropped = %d, want 12", s.Dropped)
	}
}

func TestRecorderReset(t *testing.T) {
	rec := NewRecorder(4)
	rec.Fork(2)
	rec.Charge(1, 5)
	rec.Reset()
	if len(rec.Events()) != 0 {
		t.Error("events survived reset")
	}
	s := rec.Summary()
	if s.Forks != 0 || s.UnitsCharged != 0 || s.Dropped != 0 {
		t.Errorf("summary survived reset: %+v", s)
	}
}

func TestRenderReadable(t *testing.T) {
	rec := NewRecorder(16)
	rec.Fork(3)
	rec.Charge(2, 7.5)
	rec.Barrier()
	out := rec.Render()
	for _, want := range []string{"fork n=3", "charge tid=2 units=7.5", "barrier"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if EventKind(99).String() != "event(99)" {
		t.Error("unknown kind name")
	}
}

func TestTeeFansOut(t *testing.T) {
	recA := NewRecorder(16)
	recB := NewRecorder(16)
	tee := NewTee(recA, nil, recB)
	if len(tee) != 2 {
		t.Fatalf("tee kept %d monitors, want 2 (nil skipped)", len(tee))
	}
	tee.Fork(2)
	tee.Charge(0, 3)
	tee.CriticalEnter(1)
	tee.CriticalExit(1)
	tee.Single(0)
	tee.Reduction(2)
	tee.Task(1)
	tee.Steal(1, 0)
	tee.NestedFork(0, 1)
	tee.NestedJoin(0)
	tee.Barrier()
	tee.Join()
	for i, rec := range []*Recorder{recA, recB} {
		s := rec.Summary()
		if s.Forks != 1 || s.UnitsCharged != 3 || s.Criticals != 1 || s.Singles != 1 || s.Reductions != 1 || s.Barriers != 1 || s.Joins != 1 {
			t.Errorf("monitor %d missed events: %+v", i, s)
		}
		if s.Tasks != 1 || s.Steals != 1 || s.NestedForks != 1 || s.NestedJoins != 1 {
			t.Errorf("monitor %d missed task-scheduler events: %+v", i, s)
		}
	}
}

func TestRecorderCapturesTaskAndStealEvents(t *testing.T) {
	rec := NewRecorder(0)
	rt, err := core.New(
		core.WithLayer(core.NewNativeLayer(8)),
		core.WithNumThreads(4),
		core.WithMonitor(rec),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	_ = rt.Parallel(func(c *core.Context) {
		c.SingleNoWait(func() {
			for i := 0; i < 20; i++ {
				c.Task(func() {})
			}
			c.TaskWait()
		})
	})
	s := rec.Summary()
	if s.Tasks != 20 {
		t.Errorf("task events = %d, want 20", s.Tasks)
	}
	// Steals are interleaving-dependent; the event count must agree with
	// the runtime's own counter either way.
	if got := rt.Stats().Snapshot().Steals; s.Steals != got {
		t.Errorf("steal events = %d, stats counter = %d", s.Steals, got)
	}
}

func TestStealEventRecordsThiefAndVictim(t *testing.T) {
	rec := NewRecorder(16)
	rec.Steal(2, 5)
	events := rec.Events()
	if len(events) != 1 || events[0].Kind != EvSteal {
		t.Fatalf("events = %v, want one steal", events)
	}
	if events[0].Tid != 2 || events[0].Units != 5 {
		t.Errorf("steal tid=%d units=%v, want thief 2 / victim 5", events[0].Tid, events[0].Units)
	}
	if out := rec.Render(); !strings.Contains(out, "steal tid=2") {
		t.Errorf("render missing steal event:\n%s", out)
	}
}

func TestNestedParallelTracedAndCounted(t *testing.T) {
	// A nested Parallel serializes to a team of one, but it must still be
	// visible: nested fork/join events in the trace, and a region + thread
	// in the runtime stats.
	rec := NewRecorder(0)
	rt, err := core.New(
		core.WithLayer(core.NewNativeLayer(8)),
		core.WithNumThreads(2),
		core.WithMonitor(rec),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	var innerThreads int
	_ = rt.Parallel(func(c *core.Context) {
		c.Single(func() {
			if err := c.Parallel(func(inner *core.Context) {
				innerThreads = inner.NumThreads()
				inner.Task(func() {})
				inner.TaskWait()
			}); err != nil {
				t.Error(err)
			}
		})
	})
	if innerThreads != 1 {
		t.Errorf("nested team size = %d, want 1 (serialized)", innerThreads)
	}
	s := rec.Summary()
	if s.Forks != 1 || s.Joins != 1 {
		t.Errorf("outer forks/joins = %d/%d, want 1/1 (nested must not masquerade as outer)", s.Forks, s.Joins)
	}
	if s.NestedForks != 1 || s.NestedJoins != 1 {
		t.Errorf("nested forks/joins = %d/%d, want 1/1", s.NestedForks, s.NestedJoins)
	}
	if s.Tasks != 1 {
		t.Errorf("task events = %d, want 1 (the nested region's task)", s.Tasks)
	}
	st := rt.Stats().Snapshot()
	if st.Regions != 2 || st.Threads != 3 {
		t.Errorf("stats regions=%d threads=%d, want 2 regions / 3 activations", st.Regions, st.Threads)
	}
}

func TestTeeWithModelTracesAndTimes(t *testing.T) {
	// Trace and time the same run: the recorder's charge total and the
	// model's virtual clock must both be populated from one execution.
	board := platform.T4240RDB()
	model := perfmodel.New(board, perfmodel.KernelProfile{Name: "k", CyclesPerUnit: 100})
	rec := NewRecorder(0)
	rt, err := core.New(
		core.WithLayer(core.NewNativeLayer(board.HWThreads())),
		core.WithNumThreads(6),
		core.WithMonitor(NewTee(model, rec)),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	_ = rt.Parallel(func(c *core.Context) {
		c.ForRange(6000, core.LoopOpts{Schedule: core.ScheduleStatic}, func(lo, hi int) {
			c.Charge(float64(hi - lo))
		})
	})
	if model.Seconds() <= 0 {
		t.Error("model saw no time")
	}
	if got := rec.Summary().UnitsCharged; got != 6000 {
		t.Errorf("recorder units = %v, want 6000", got)
	}
}

func TestRecorderConcurrentEmitOverflowingRing(t *testing.T) {
	// Many emitters racing into a ring far smaller than the event volume:
	// the retained window must stay exactly at capacity with strictly
	// increasing sequence numbers, and the aggregate counters must span
	// every emission — overflow drops events, never counts.
	const (
		capacity   = 64
		emitters   = 8
		perEmitter = 500
	)
	rec := NewRecorder(capacity)
	var wg sync.WaitGroup
	for g := 0; g < emitters; g++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < perEmitter; i++ {
				switch i % 4 {
				case 0:
					rec.Charge(tid, 1)
				case 1:
					rec.Task(tid)
				case 2:
					rec.Steal(tid, (tid+1)%emitters)
				default:
					rec.Barrier()
				}
			}
		}(g)
	}
	wg.Wait()

	const total = emitters * perEmitter
	events := rec.Events()
	if len(events) != capacity {
		t.Fatalf("retained %d events, want %d", len(events), capacity)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("sequence not increasing at %d: %d then %d", i, events[i-1].Seq, events[i].Seq)
		}
	}
	if events[len(events)-1].Seq != total-1 {
		t.Errorf("newest seq = %d, want %d", events[len(events)-1].Seq, total-1)
	}
	s := rec.Summary()
	if s.Dropped != total-capacity {
		t.Errorf("dropped = %d, want %d", s.Dropped, total-capacity)
	}
	perKind := total / 4
	if s.ChargeEvents != uint64(perKind) || s.Tasks != uint64(perKind) ||
		s.Steals != uint64(perKind) || s.Barriers != uint64(perKind) {
		t.Errorf("aggregates lost events under concurrency: %+v", s)
	}
	if s.UnitsCharged != float64(perKind) {
		t.Errorf("units = %v, want %d", s.UnitsCharged, perKind)
	}
}

func TestRecorderConcurrentReadersAndWriters(t *testing.T) {
	// Events/Summary/Render must be safe to call while emitters run; the
	// assertions are weak on purpose — the property under test is freedom
	// from races and from torn ring state, enforced by -race and the
	// ring-size invariant.
	rec := NewRecorder(32)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					rec.Charge(tid, 1)
				}
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		if n := len(rec.Events()); n > 32 {
			t.Errorf("ring exceeded capacity: %d", n)
		}
		_ = rec.Summary()
		_ = rec.Render()
	}
	close(stop)
	wg.Wait()
}
