// Package validation reimplements the methodology of the OpenMP
// validation suite the paper used to shake out its runtime (§6A, ref
// [49]): a battery of semantic conformance checks, each run repeatedly to
// expose races, and each paired where meaningful with a crosscheck — a
// deliberately broken variant that MUST fail, proving the check can
// detect the failure mode it guards.
//
// The paper reports that this suite caught "a non-functional
// synchronization primitive in MCA-libGOMP that caused an OpenMP critical
// construct to fail"; the regression for that exact bug lives in
// BrokenMutexRegression, which injects the fault into the MCA layer and
// demands the critical check notice.
package validation

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"openmpmca/internal/core"
	"openmpmca/internal/platform"
)

// Test is one conformance check.
type Test struct {
	// Name identifies the checked construct/semantic.
	Name string
	// Run executes the check once under rt, returning nil when the
	// semantic held.
	Run func(rt *core.Runtime) error
	// Cross, if non-nil, executes a deliberately broken variant; the
	// suite requires it to return an error (the check must be able to
	// fail).
	Cross func(rt *core.Runtime) error
}

// Outcome is one test's aggregated result over repetitions.
type Outcome struct {
	Name string
	// Runs and Failures count Run executions and their failures.
	Runs, Failures int
	// CrossOK reports that the crosscheck failed as required (true when
	// no crosscheck exists).
	CrossOK bool
	// Detail carries the first failure message, if any.
	Detail string
}

// Passed reports overall success: no failures and a working crosscheck.
func (o Outcome) Passed() bool { return o.Failures == 0 && o.CrossOK }

// amplify widens race windows: a read-modify-write with a scheduler yield
// in between loses updates reliably even on a single-CPU host, which is
// what makes the critical/lock crosschecks deterministic enough to trust.
func amplify() { runtime.Gosched() }

const teamSize = 8

// Suite returns the full battery, sorted by name.
func Suite() []Test {
	tests := []Test{
		{Name: "parallel.team", Run: checkParallelTeam},
		{Name: "parallel.ids", Run: checkThreadIDs},
		{Name: "for.static", Run: checkForSchedule(core.LoopOpts{Schedule: core.ScheduleStatic})},
		{Name: "for.static.chunked", Run: checkForSchedule(core.LoopOpts{Schedule: core.ScheduleStatic, Chunk: 3})},
		{Name: "for.dynamic", Run: checkForSchedule(core.LoopOpts{Schedule: core.ScheduleDynamic, Chunk: 2})},
		{Name: "for.guided", Run: checkForSchedule(core.LoopOpts{Schedule: core.ScheduleGuided})},
		{Name: "barrier", Run: checkBarrier, Cross: crossBarrier},
		{Name: "single", Run: checkSingle, Cross: crossSingle},
		{Name: "master", Run: checkMaster},
		{Name: "critical", Run: checkCritical, Cross: crossCritical},
		{Name: "lock", Run: checkLock, Cross: crossLock},
		{Name: "sections", Run: checkSections},
		{Name: "reduction.sum", Run: checkReductionSum},
		{Name: "reduction.order", Run: checkReductionOrder},
		{Name: "task", Run: checkTask},
		{Name: "taskwait", Run: checkTaskWait},
		{Name: "taskgroup", Run: checkTaskgroup},
		{Name: "schedule.runtime", Run: checkRuntimeSchedule},
		{Name: "ordered", Run: checkOrdered, Cross: crossOrdered},
		{Name: "lock.nested", Run: checkNestLock},
		{Name: "atomic", Run: checkAtomic},
		{Name: "single.copyprivate", Run: checkSingleCopy},
		{Name: "parallel.nested", Run: checkNestedParallel},
		{Name: "threadprivate", Run: checkThreadPrivate},
	}
	sort.Slice(tests, func(i, j int) bool { return tests[i].Name < tests[j].Name })
	return tests
}

// RunAll executes every suite test `reps` times against fresh runtimes
// from mk, plus one crosscheck execution each.
func RunAll(mk func() (*core.Runtime, error), reps int) ([]Outcome, error) {
	if reps <= 0 {
		reps = 3
	}
	var out []Outcome
	for _, tst := range Suite() {
		o := Outcome{Name: tst.Name, CrossOK: true}
		for r := 0; r < reps; r++ {
			rt, err := mk()
			if err != nil {
				return nil, fmt.Errorf("validation: building runtime: %w", err)
			}
			runErr := tst.Run(rt)
			_ = rt.Close()
			o.Runs++
			if runErr != nil {
				o.Failures++
				if o.Detail == "" {
					o.Detail = runErr.Error()
				}
			}
		}
		if tst.Cross != nil {
			rt, err := mk()
			if err != nil {
				return nil, err
			}
			crossErr := tst.Cross(rt)
			_ = rt.Close()
			if crossErr == nil {
				o.CrossOK = false
				if o.Detail == "" {
					o.Detail = "crosscheck did not fail"
				}
			}
		}
		out = append(out, o)
	}
	return out, nil
}

// BrokenMutexRegression reproduces the paper's §6A find: with the MCA
// layer's mutex fault injected, the critical check must fail; with the
// fixed layer it must pass. It returns nil when both halves behave.
func BrokenMutexRegression(board *platform.Board) error {
	mkBroken := func() (*core.Runtime, error) {
		l, err := core.NewMCALayer(board.NewSystem(), core.WithBrokenMutex())
		if err != nil {
			return nil, err
		}
		return core.New(core.WithLayer(l), core.WithNumThreads(teamSize))
	}
	mkFixed := func() (*core.Runtime, error) {
		l, err := core.NewMCALayer(board.NewSystem())
		if err != nil {
			return nil, err
		}
		return core.New(core.WithLayer(l), core.WithNumThreads(teamSize))
	}

	rt, err := mkBroken()
	if err != nil {
		return err
	}
	brokenErr := checkCritical(rt)
	_ = rt.Close()
	if brokenErr == nil {
		return errors.New("validation: critical check did NOT detect the broken MRAPI mutex")
	}

	rt, err = mkFixed()
	if err != nil {
		return err
	}
	fixedErr := checkCritical(rt)
	_ = rt.Close()
	if fixedErr != nil {
		return fmt.Errorf("validation: critical check fails on the fixed layer: %w", fixedErr)
	}
	return nil
}

// ----- individual checks -----

func checkParallelTeam(rt *core.Runtime) error {
	var n atomic.Int32
	if err := rt.ParallelN(teamSize, func(c *core.Context) { n.Add(1) }); err != nil {
		return err
	}
	if n.Load() != teamSize {
		return fmt.Errorf("parallel: %d activations, want %d", n.Load(), teamSize)
	}
	return nil
}

func checkThreadIDs(rt *core.Runtime) error {
	seen := make([]atomic.Int32, teamSize)
	err := rt.ParallelN(teamSize, func(c *core.Context) {
		if c.NumThreads() != teamSize {
			return
		}
		if tid := c.ThreadNum(); tid >= 0 && tid < teamSize {
			seen[tid].Add(1)
		}
	})
	if err != nil {
		return err
	}
	for tid := range seen {
		if seen[tid].Load() != 1 {
			return fmt.Errorf("thread id %d seen %d times", tid, seen[tid].Load())
		}
	}
	return nil
}

func checkForSchedule(opts core.LoopOpts) func(rt *core.Runtime) error {
	return func(rt *core.Runtime) error {
		const n = 997 // prime, to stress chunk remainders
		counts := make([]int32, n)
		err := rt.ParallelN(teamSize, func(c *core.Context) {
			c.ForOpts(n, opts, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&counts[i], 1)
				}
			})
		})
		if err != nil {
			return err
		}
		for i, cnt := range counts {
			if cnt != 1 {
				return fmt.Errorf("for(%v): iteration %d ran %d times", opts.Schedule, i, cnt)
			}
		}
		return nil
	}
}

func checkBarrier(rt *core.Runtime) error {
	const rounds = 20
	var bad atomic.Bool
	counters := make([]atomic.Int32, rounds)
	err := rt.ParallelN(teamSize, func(c *core.Context) {
		for r := 0; r < rounds; r++ {
			counters[r].Add(1)
			c.Barrier()
			if counters[r].Load() != teamSize {
				bad.Store(true)
			}
			c.Barrier()
		}
	})
	if err != nil {
		return err
	}
	if bad.Load() {
		return errors.New("barrier: thread proceeded before full arrival")
	}
	return nil
}

// crossBarrier omits the barrier; with the yield amplifier some thread
// must observe a partial count.
func crossBarrier(rt *core.Runtime) error {
	const rounds = 200
	var bad atomic.Bool
	counters := make([]atomic.Int32, rounds)
	err := rt.ParallelN(teamSize, func(c *core.Context) {
		for r := 0; r < rounds; r++ {
			counters[r].Add(1)
			amplify() // no barrier here — the bug under test
			if counters[r].Load() != teamSize {
				bad.Store(true)
			}
		}
	})
	if err != nil {
		return err
	}
	if bad.Load() {
		return errors.New("barrier missing (expected)")
	}
	return nil
}

func checkSingle(rt *core.Runtime) error {
	var execs atomic.Int32
	const rounds = 25
	err := rt.ParallelN(teamSize, func(c *core.Context) {
		for r := 0; r < rounds; r++ {
			c.Single(func() { execs.Add(1) })
		}
	})
	if err != nil {
		return err
	}
	if execs.Load() != rounds {
		return fmt.Errorf("single: %d executions, want %d", execs.Load(), rounds)
	}
	return nil
}

// crossSingle runs the body unconditionally — every thread executes, so
// the exactly-once property must be seen to break.
func crossSingle(rt *core.Runtime) error {
	var execs atomic.Int32
	const rounds = 25
	err := rt.ParallelN(teamSize, func(c *core.Context) {
		for r := 0; r < rounds; r++ {
			execs.Add(1) // the bug: no single construct
			c.Barrier()
		}
	})
	if err != nil {
		return err
	}
	if execs.Load() != rounds {
		return errors.New("single missing (expected)")
	}
	return nil
}

func checkMaster(rt *core.Runtime) error {
	var execs atomic.Int32
	var wrongTid atomic.Bool
	err := rt.ParallelN(teamSize, func(c *core.Context) {
		c.Master(func() {
			execs.Add(1)
			if c.ThreadNum() != 0 {
				wrongTid.Store(true)
			}
		})
	})
	if err != nil {
		return err
	}
	if execs.Load() != 1 || wrongTid.Load() {
		return fmt.Errorf("master: %d executions (wrongTid=%v)", execs.Load(), wrongTid.Load())
	}
	return nil
}

// criticalBody is the shared amplified read-modify-write used by the
// critical/lock checks and the broken-mutex regression. The split
// load/yield/store loses updates whenever two threads overlap — but uses
// atomics, so a missing lock shows up as a wrong count rather than as a
// data race (keeping the deliberately broken crosschecks clean under the
// race detector).
func criticalBody(counter *atomic.Int64) {
	v := counter.Load()
	amplify()
	counter.Store(v + 1)
}

func checkCritical(rt *core.Runtime) error {
	var counter atomic.Int64
	const perThread = 50
	err := rt.ParallelN(teamSize, func(c *core.Context) {
		for i := 0; i < perThread; i++ {
			c.Critical(func() { criticalBody(&counter) })
		}
	})
	if err != nil {
		return err
	}
	if counter.Load() != teamSize*perThread {
		return fmt.Errorf("critical: counter %d, want %d", counter.Load(), teamSize*perThread)
	}
	return nil
}

func crossCritical(rt *core.Runtime) error {
	var counter atomic.Int64
	const perThread = 50
	err := rt.ParallelN(teamSize, func(c *core.Context) {
		for i := 0; i < perThread; i++ {
			criticalBody(&counter) // the bug: no critical
		}
	})
	if err != nil {
		return err
	}
	if counter.Load() != teamSize*perThread {
		return errors.New("critical missing (expected)")
	}
	return nil
}

func checkLock(rt *core.Runtime) error {
	l, err := rt.NewLock()
	if err != nil {
		return err
	}
	var counter atomic.Int64
	const perThread = 50
	err = rt.ParallelN(teamSize, func(c *core.Context) {
		for i := 0; i < perThread; i++ {
			l.Lock(c)
			criticalBody(&counter)
			l.Unlock(c)
		}
	})
	if err != nil {
		return err
	}
	if counter.Load() != teamSize*perThread {
		return fmt.Errorf("lock: counter %d, want %d", counter.Load(), teamSize*perThread)
	}
	return nil
}

func crossLock(rt *core.Runtime) error {
	var counter atomic.Int64
	const perThread = 50
	err := rt.ParallelN(teamSize, func(c *core.Context) {
		for i := 0; i < perThread; i++ {
			criticalBody(&counter) // the bug: lock elided
		}
	})
	if err != nil {
		return err
	}
	if counter.Load() != teamSize*perThread {
		return errors.New("lock missing (expected)")
	}
	return nil
}

func checkSections(rt *core.Runtime) error {
	var counts [5]atomic.Int32
	secs := make([]func(), len(counts))
	for i := range secs {
		i := i
		secs[i] = func() { counts[i].Add(1) }
	}
	if err := rt.ParallelN(teamSize, func(c *core.Context) { c.Sections(secs...) }); err != nil {
		return err
	}
	for i := range counts {
		if counts[i].Load() != 1 {
			return fmt.Errorf("sections: section %d ran %d times", i, counts[i].Load())
		}
	}
	return nil
}

func checkReductionSum(rt *core.Runtime) error {
	const n = 4096
	var got int64
	err := rt.ParallelN(teamSize, func(c *core.Context) {
		r := core.Reduce(c, n, int64(0),
			func(a, b int64) int64 { return a + b },
			func(lo, hi int) int64 {
				var s int64
				for i := lo; i < hi; i++ {
					s += int64(i)
				}
				return s
			})
		if c.ThreadNum() == 0 {
			got = r
		}
	})
	if err != nil {
		return err
	}
	if want := int64(n * (n - 1) / 2); got != want {
		return fmt.Errorf("reduction: %d, want %d", got, want)
	}
	return nil
}

func checkReductionOrder(rt *core.Runtime) error {
	const text = "abcdefghijklmnopqrstuvwxyz0123456789"
	var got string
	err := rt.ParallelN(teamSize, func(c *core.Context) {
		r := core.Reduce(c, len(text), "",
			func(a, b string) string { return a + b },
			func(lo, hi int) string { return text[lo:hi] })
		if c.ThreadNum() == 0 {
			got = r
		}
	})
	if err != nil {
		return err
	}
	if got != text {
		return fmt.Errorf("reduction order: %q", got)
	}
	return nil
}

func checkTask(rt *core.Runtime) error {
	var ran atomic.Int32
	err := rt.ParallelN(teamSize, func(c *core.Context) {
		c.SingleNoWait(func() {
			for i := 0; i < 64; i++ {
				c.Task(func() { ran.Add(1) })
			}
		})
	})
	if err != nil {
		return err
	}
	if ran.Load() != 64 {
		return fmt.Errorf("task: %d ran, want 64", ran.Load())
	}
	return nil
}

func checkTaskWait(rt *core.Runtime) error {
	var bad atomic.Bool
	err := rt.ParallelN(teamSize, func(c *core.Context) {
		c.SingleNoWait(func() {
			var done atomic.Int32
			for i := 0; i < 32; i++ {
				c.Task(func() { done.Add(1) })
			}
			c.TaskWait()
			if done.Load() != 32 {
				bad.Store(true)
			}
		})
	})
	if err != nil {
		return err
	}
	if bad.Load() {
		return errors.New("taskwait returned early")
	}
	return nil
}

func checkTaskgroup(rt *core.Runtime) error {
	var bad atomic.Bool
	err := rt.ParallelN(teamSize, func(c *core.Context) {
		c.SingleNoWait(func() {
			var done atomic.Int32
			c.Taskgroup(func() {
				for i := 0; i < 16; i++ {
					c.Task(func() {
						amplify()
						done.Add(1)
					})
				}
			})
			if done.Load() != 16 {
				bad.Store(true)
			}
		})
	})
	if err != nil {
		return err
	}
	if bad.Load() {
		return errors.New("taskgroup returned early")
	}
	return nil
}

func checkOrdered(rt *core.Runtime) error {
	const n = 96
	order := make([]int, 0, n)
	err := rt.ParallelN(teamSize, func(c *core.Context) {
		c.ForOpts(n, core.LoopOpts{Schedule: core.ScheduleDynamic, Ordered: true}, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				c.Ordered(i, func() {
					amplify()
					order = append(order, i)
				})
			}
		})
	})
	if err != nil {
		return err
	}
	if len(order) != n {
		return fmt.Errorf("ordered: %d sections ran, want %d", len(order), n)
	}
	for i, v := range order {
		if v != i {
			return fmt.Errorf("ordered: position %d saw iteration %d", i, v)
		}
	}
	return nil
}

// crossOrdered drops the ordered construct and walks each chunk backwards
// — without Ordered sequencing, the recorded order is guaranteed
// non-ascending independent of scheduler fairness.
func crossOrdered(rt *core.Runtime) error {
	const n = 96
	var mu sync.Mutex
	order := make([]int, 0, n)
	err := rt.ParallelN(teamSize, func(c *core.Context) {
		c.ForOpts(n, core.LoopOpts{Schedule: core.ScheduleDynamic, Chunk: 4}, func(lo, hi int) {
			for i := hi - 1; i >= lo; i-- {
				amplify() // the bug: no ordering
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
			}
		})
	})
	if err != nil {
		return err
	}
	for i, v := range order {
		if v != i {
			return errors.New("ordered missing (expected)")
		}
	}
	return nil
}

func checkNestLock(rt *core.Runtime) error {
	l, err := rt.NewNestLock()
	if err != nil {
		return err
	}
	var counter atomic.Int64
	err = rt.ParallelN(teamSize, func(c *core.Context) {
		for i := 0; i < 40; i++ {
			l.Lock(c)
			l.Lock(c)
			criticalBody(&counter)
			l.Unlock(c)
			l.Unlock(c)
		}
	})
	if err != nil {
		return err
	}
	if counter.Load() != teamSize*40 {
		return fmt.Errorf("nest lock: counter %d, want %d", counter.Load(), teamSize*40)
	}
	if l.Depth() != 0 {
		return fmt.Errorf("nest lock: residual depth %d", l.Depth())
	}
	return nil
}

func checkAtomic(rt *core.Runtime) error {
	var acc core.AtomicFloat64
	var peak core.AtomicFloat64
	err := rt.ParallelN(teamSize, func(c *core.Context) {
		for i := 1; i <= 250; i++ {
			acc.Add(0.5)
			peak.Max(float64(c.ThreadNum()*1000 + i))
		}
	})
	if err != nil {
		return err
	}
	if got := acc.Load(); got != float64(teamSize)*125 {
		return fmt.Errorf("atomic add: %v, want %v", got, float64(teamSize)*125)
	}
	if got := peak.Load(); got != float64((teamSize-1)*1000+250) {
		return fmt.Errorf("atomic max: %v", got)
	}
	return nil
}

func checkSingleCopy(rt *core.Runtime) error {
	var bad atomic.Int32
	err := rt.ParallelN(teamSize, func(c *core.Context) {
		for round := 1; round <= 15; round++ {
			v := core.SingleCopy(c, func() int { return round * 7 })
			if v != round*7 {
				bad.Add(1)
			}
		}
	})
	if err != nil {
		return err
	}
	if bad.Load() != 0 {
		return fmt.Errorf("copyprivate: %d wrong observations", bad.Load())
	}
	return nil
}

func checkNestedParallel(rt *core.Runtime) error {
	var inner atomic.Int32
	err := rt.ParallelN(teamSize, func(c *core.Context) {
		if err := c.Parallel(func(ic *core.Context) {
			if ic.NumThreads() != 1 {
				inner.Store(-1)
				return
			}
			inner.Add(1)
			ic.Barrier()
		}); err != nil {
			inner.Store(-1)
		}
	})
	if err != nil {
		return err
	}
	if inner.Load() != teamSize {
		return fmt.Errorf("nested parallel: %d serialized inner regions, want %d", inner.Load(), teamSize)
	}
	return nil
}

func checkRuntimeSchedule(rt *core.Runtime) error {
	rt.SetRuntimeSchedule(core.ScheduleDynamic, 4)
	before := rt.Stats().Snapshot().Chunks
	const n = 256
	var sum atomic.Int64
	err := rt.ParallelN(teamSize, func(c *core.Context) {
		c.For(n, func(i int) { sum.Add(1) })
	})
	if err != nil {
		return err
	}
	if sum.Load() != n {
		return fmt.Errorf("schedule(runtime): %d iterations", sum.Load())
	}
	// A dynamic chunk-4 loop over 256 iterations must have issued 64
	// dispenser chunks.
	if got := rt.Stats().Snapshot().Chunks - before; got != n/4 {
		return fmt.Errorf("schedule(runtime) not honored: %d chunks, want %d", got, n/4)
	}
	return nil
}

func checkThreadPrivate(rt *core.Runtime) error {
	tp := core.NewThreadPrivate[int](func() int { return 1 })
	err := rt.ParallelN(teamSize, func(c *core.Context) {
		*tp.Get(c) += c.ThreadNum()
	})
	if err != nil {
		return err
	}
	// Second region, same team size: copies persist per thread.
	var wrong atomic.Int32
	err = rt.ParallelN(teamSize, func(c *core.Context) {
		if *tp.Get(c) != 1+c.ThreadNum() {
			wrong.Add(1)
		}
	})
	if err != nil {
		return err
	}
	if wrong.Load() != 0 {
		return fmt.Errorf("threadprivate: %d threads lost their copy", wrong.Load())
	}
	return nil
}
