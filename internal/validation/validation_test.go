package validation

import (
	"testing"

	"openmpmca/internal/core"
	"openmpmca/internal/platform"
)

func mkNative() (*core.Runtime, error) {
	return core.New(core.WithLayer(core.NewNativeLayer(24)), core.WithNumThreads(teamSize))
}

func mkMCA() (*core.Runtime, error) {
	l, err := core.NewMCALayer(platform.T4240RDB().NewSystem())
	if err != nil {
		return nil, err
	}
	return core.New(core.WithLayer(l), core.WithNumThreads(teamSize))
}

func TestSuiteIsSortedAndNamed(t *testing.T) {
	tests := Suite()
	if len(tests) < 15 {
		t.Fatalf("suite has only %d tests", len(tests))
	}
	for i := 1; i < len(tests); i++ {
		if tests[i-1].Name >= tests[i].Name {
			t.Errorf("suite not sorted at %q >= %q", tests[i-1].Name, tests[i].Name)
		}
	}
	for _, tst := range tests {
		if tst.Run == nil {
			t.Errorf("%s has no Run", tst.Name)
		}
	}
}

func TestRunAllNativePasses(t *testing.T) {
	outcomes, err := RunAll(mkNative, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outcomes {
		if !o.Passed() {
			t.Errorf("%s failed (%d/%d): %s (crossOK=%v)", o.Name, o.Failures, o.Runs, o.Detail, o.CrossOK)
		}
		if o.Runs != 2 {
			t.Errorf("%s ran %d times, want 2", o.Name, o.Runs)
		}
	}
}

func TestRunAllMCAPasses(t *testing.T) {
	outcomes, err := RunAll(mkMCA, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outcomes {
		if !o.Passed() {
			t.Errorf("%s failed on MCA layer (%d/%d): %s (crossOK=%v)", o.Name, o.Failures, o.Runs, o.Detail, o.CrossOK)
		}
	}
}

func TestBrokenMutexRegression(t *testing.T) {
	// E6: the paper's §6A bug. The injected MRAPI mutex fault must be
	// caught by the critical check, and the fixed layer must pass.
	if err := BrokenMutexRegression(platform.T4240RDB()); err != nil {
		t.Fatal(err)
	}
}

func TestIndividualChecksDetectInjectedFault(t *testing.T) {
	// The critical check must fail when the layer's mutex is a no-op.
	l, err := core.NewMCALayer(platform.T4240RDB().NewSystem(), core.WithBrokenMutex())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.New(core.WithLayer(l), core.WithNumThreads(teamSize))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if err := checkCritical(rt); err == nil {
		t.Error("checkCritical passed with a broken mutex")
	}
}

func TestOutcomePassed(t *testing.T) {
	if (Outcome{Runs: 3, Failures: 0, CrossOK: true}).Passed() != true {
		t.Error("clean outcome should pass")
	}
	if (Outcome{Runs: 3, Failures: 1, CrossOK: true}).Passed() {
		t.Error("failing outcome should not pass")
	}
	if (Outcome{Runs: 3, CrossOK: false}).Passed() {
		t.Error("broken crosscheck should not pass")
	}
}

func TestRunAllDefaultsReps(t *testing.T) {
	outcomes, err := RunAll(mkNative, 0)
	if err != nil {
		t.Fatal(err)
	}
	if outcomes[0].Runs != 3 {
		t.Errorf("default reps = %d, want 3", outcomes[0].Runs)
	}
}
